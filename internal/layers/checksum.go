package layers

import (
	"encoding/binary"
	"net/netip"
)

// pseudoHeaderSum computes the ones-complement sum of the IPv6
// pseudo-header (RFC 8200 §8.1) for upper-layer checksums.
func pseudoHeaderSum(src, dst netip.Addr, length uint32, proto IPProtocol) uint64 {
	var sum uint64
	s, d := src.As16(), dst.As16()
	for i := 0; i < 16; i += 2 {
		sum += uint64(binary.BigEndian.Uint16(s[i : i+2]))
		sum += uint64(binary.BigEndian.Uint16(d[i : i+2]))
	}
	sum += uint64(length>>16) + uint64(length&0xFFFF)
	sum += uint64(proto)
	return sum
}

// checksum finishes an ones-complement checksum over data with an
// initial sum (from the pseudo-header).
func checksum(data []byte, initial uint64) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint64(data[0]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// transportChecksum computes the RFC 8200 upper-layer checksum for the
// given transport segment (header+payload with the checksum field
// zeroed by the caller, or included — callers verifying a checksum pass
// the segment as-is and expect 0).
func transportChecksum(src, dst netip.Addr, proto IPProtocol, segment []byte) uint16 {
	return checksum(segment, pseudoHeaderSum(src, dst, uint32(len(segment)), proto))
}
