package layers

import (
	"fmt"
)

// LinkType identifies the outermost framing of captured packets,
// matching the pcap link types the package reads and writes.
type LinkType uint32

// Link types supported by the capture pipeline.
const (
	LinkTypeEthernet LinkType = 1   // DLT_EN10MB
	LinkTypeRaw      LinkType = 101 // DLT_RAW: bare IP packets (MAWI-style)
	LinkTypeIPv6     LinkType = 229 // DLT_IPV6
)

// maxExtensionHeaders bounds the extension chain walk; RFC-conforming
// packets have at most a handful, and unbounded chains are a parser DoS
// vector.
const maxExtensionHeaders = 8

// Decoded holds the result of parsing one frame. A single Decoded can
// be reused across packets (the DecodingLayerParser idiom): all slices
// alias the input buffer and no memory is retained between calls.
type Decoded struct {
	HasEthernet bool
	Ethernet    Ethernet
	IPv6        IPv6
	// Extensions holds the decoded extension chain, length NumExtensions.
	Extensions    [maxExtensionHeaders]Extension
	NumExtensions int
	// Transport identifies which transport layer (if any) was decoded:
	// ProtoTCP, ProtoUDP, ProtoICMPv6, or anything else for "none".
	Transport IPProtocol
	TCP       TCP
	UDP       UDP
	ICMPv6    ICMPv6
}

// SrcPort returns the transport source port, or 0 for ICMPv6/none.
func (d *Decoded) SrcPort() uint16 {
	switch d.Transport {
	case ProtoTCP:
		return d.TCP.SrcPort
	case ProtoUDP:
		return d.UDP.SrcPort
	default:
		return 0
	}
}

// DstPort returns the transport destination port, or 0 for ICMPv6/none.
func (d *Decoded) DstPort() uint16 {
	switch d.Transport {
	case ProtoTCP:
		return d.TCP.DstPort
	case ProtoUDP:
		return d.UDP.DstPort
	default:
		return 0
	}
}

// ParseFrame decodes a frame of the given link type into d. It returns
// an error for truncated or non-IPv6 packets; telescope ingest counts
// and skips these. Unknown transport protocols are not an error: the
// IPv6 layer is valid and Transport records the protocol number.
func ParseFrame(data []byte, link LinkType, d *Decoded) error {
	d.HasEthernet = false
	d.NumExtensions = 0
	d.Transport = ProtoNoNext

	ip := data
	switch link {
	case LinkTypeEthernet:
		if err := d.Ethernet.DecodeFromBytes(data); err != nil {
			return err
		}
		d.HasEthernet = true
		if d.Ethernet.EtherType != EtherTypeIPv6 {
			return fmt.Errorf("ethertype %#04x: %w", uint16(d.Ethernet.EtherType), ErrNotIPv6)
		}
		ip = d.Ethernet.Payload()
	case LinkTypeRaw, LinkTypeIPv6:
		// bare IP
	default:
		return fmt.Errorf("link type %d: %w", link, ErrUnknownNext)
	}

	if err := d.IPv6.DecodeFromBytes(ip); err != nil {
		return err
	}
	next := d.IPv6.NextHeader
	rest := d.IPv6.Payload()
	// Respect the payload length field when the capture includes
	// trailing bytes (Ethernet padding).
	if int(d.IPv6.Length) < len(rest) {
		rest = rest[:d.IPv6.Length]
	}

	for next.IsExtension() {
		if d.NumExtensions >= maxExtensionHeaders {
			return ErrChainTooLong
		}
		ext := &d.Extensions[d.NumExtensions]
		if err := ext.DecodeFromBytes(next, rest); err != nil {
			return err
		}
		d.NumExtensions++
		next = ext.NextHeader
		rest = ext.Payload()
	}

	switch next {
	case ProtoTCP:
		if err := d.TCP.DecodeFromBytes(rest); err != nil {
			return err
		}
		d.Transport = ProtoTCP
	case ProtoUDP:
		if err := d.UDP.DecodeFromBytes(rest); err != nil {
			return err
		}
		d.Transport = ProtoUDP
	case ProtoICMPv6:
		if err := d.ICMPv6.DecodeFromBytes(rest); err != nil {
			return err
		}
		d.Transport = ProtoICMPv6
	default:
		d.Transport = next
	}
	return nil
}
