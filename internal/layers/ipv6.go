package layers

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv6 is a decoded IPv6 fixed header.
type IPv6 struct {
	Version      uint8 // always 6 after a successful decode
	TrafficClass uint8
	FlowLabel    uint32
	Length       uint16 // payload length (everything after the 40-byte header)
	NextHeader   IPProtocol
	HopLimit     uint8
	Src, Dst     netip.Addr

	payload []byte
}

const ipv6HeaderLen = 40

// LayerType implements SerializableLayer.
func (*IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// Payload returns the bytes following the fixed header (extension
// headers included).
func (ip *IPv6) Payload() []byte { return ip.payload }

// DecodeFromBytes parses the 40-byte IPv6 fixed header.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < ipv6HeaderLen {
		return fmt.Errorf("ipv6 header: %w", ErrTruncated)
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	ip.Version = uint8(vtf >> 28)
	if ip.Version != 6 {
		return fmt.Errorf("version %d: %w", ip.Version, ErrNotIPv6)
	}
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0xFFFFF
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = IPProtocol(data[6])
	ip.HopLimit = data[7]
	var a [16]byte
	copy(a[:], data[8:24])
	ip.Src = netip.AddrFrom16(a)
	copy(a[:], data[24:40])
	ip.Dst = netip.AddrFrom16(a)
	ip.payload = data[ipv6HeaderLen:]
	return nil
}

// SerializeTo prepends the IPv6 fixed header. With opts.FixLengths the
// payload-length field is set to the current buffer content length.
func (ip *IPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if !ip.Src.Is6() || !ip.Dst.Is6() {
		return fmt.Errorf("ipv6 serialize: src/dst must be IPv6 (%v → %v)", ip.Src, ip.Dst)
	}
	if opts.FixLengths {
		if b.Len() > 0xFFFF {
			return fmt.Errorf("ipv6 serialize: payload %d exceeds 65535", b.Len())
		}
		ip.Length = uint16(b.Len())
	}
	h := b.Prepend(ipv6HeaderLen)
	vtf := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0xFFFFF
	binary.BigEndian.PutUint32(h[0:4], vtf)
	binary.BigEndian.PutUint16(h[4:6], ip.Length)
	h[6] = uint8(ip.NextHeader)
	h[7] = ip.HopLimit
	src, dst := ip.Src.As16(), ip.Dst.As16()
	copy(h[8:24], src[:])
	copy(h[24:40], dst[:])
	return nil
}

// Extension is a decoded generic IPv6 extension header (hop-by-hop,
// routing, destination options, or fragment). The telescope does not
// interpret option contents; it only needs to skip the chain to find
// the transport header, but records which extensions were present
// since unusual chains are a scanner fingerprinting feature.
type Extension struct {
	Protocol   IPProtocol // which extension this is
	NextHeader IPProtocol
	Contents   []byte // full extension header bytes (aliases input)

	payload []byte
}

// LayerType implements SerializableLayer.
func (*Extension) LayerType() LayerType { return LayerTypeIPv6Extension }

// Payload returns the bytes following this extension header.
func (e *Extension) Payload() []byte { return e.payload }

// DecodeFromBytes parses one extension header of the given protocol.
func (e *Extension) DecodeFromBytes(proto IPProtocol, data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("extension header %v: %w", proto, ErrTruncated)
	}
	e.Protocol = proto
	e.NextHeader = IPProtocol(data[0])
	var size int
	if proto == ProtoFragment {
		size = 8 // fragment headers have fixed size and no length field
	} else {
		size = int(data[1])*8 + 8
	}
	if size > len(data) {
		return fmt.Errorf("extension header %v size %d: %w", proto, size, ErrTruncated)
	}
	e.Contents = data[:size]
	e.payload = data[size:]
	return nil
}

// SerializeTo prepends the extension header verbatim from Contents,
// patching the next-header byte.
func (e *Extension) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if len(e.Contents) < 8 || len(e.Contents)%8 != 0 {
		return fmt.Errorf("extension serialize: contents length %d: %w", len(e.Contents), ErrBadHeaderSize)
	}
	h := b.Prepend(len(e.Contents))
	copy(h, e.Contents)
	h[0] = uint8(e.NextHeader)
	if e.Protocol != ProtoFragment {
		h[1] = uint8(len(e.Contents)/8 - 1)
	}
	return nil
}

// NewPadExtension builds a minimal 8-byte extension header of the given
// protocol filled with PadN options; useful for simulating scanners
// that add extension headers to evade naive filters.
func NewPadExtension(proto, next IPProtocol) *Extension {
	// 2 header bytes + PadN option (type 1, len 4) + 4 zero bytes.
	c := []byte{uint8(next), 0, 1, 4, 0, 0, 0, 0}
	return &Extension{Protocol: proto, NextHeader: next, Contents: c}
}
