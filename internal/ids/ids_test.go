package ids

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func rec(ts time.Time, src, dst netip.Addr) firewall.Record {
	return firewall.Record{Time: ts, Src: src, Dst: dst, Proto: layers.ProtoTCP, DstPort: 22, Length: 60}
}

// feed sends n probes from src to distinct destinations starting at
// offset off, one per second, returning the advanced timestamp.
func feed(e *Engine, ts time.Time, src netip.Addr, n, off int) time.Time {
	for i := 0; i < n; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(off+i+1))
		e.Process(rec(ts, src, dst))
		ts = ts.Add(time.Second)
	}
	return ts
}

func TestSingleSourceAlertIsMostSpecific(t *testing.T) {
	e := New(DefaultConfig())
	feed(e, t0, netaddr6.MustAddr("2001:db8:bad0::1"), 200, 0)
	alerts := e.Flush()
	if len(alerts) != 1 {
		t.Fatalf("alerts: %d (%v)", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Level != netaddr6.Agg128 {
		t.Errorf("level = %v, want /128", a.Level)
	}
	if a.Prefix != netaddr6.MustPrefix("2001:db8:bad0::1/128") {
		t.Errorf("prefix = %v", a.Prefix)
	}
	if a.EstimatedDsts < 180 || a.EstimatedDsts > 220 {
		t.Errorf("estimate = %d, want ≈200", a.EstimatedDsts)
	}
	if a.Escalated {
		t.Error("single-source alert marked escalated")
	}
}

func TestSpreadSourceEscalatesTo64(t *testing.T) {
	// 50 /128s in one /64, 8 dsts each (AS #9 pattern scaled): no /128
	// qualifies, the /64 must alert.
	e := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	ts := t0
	net64 := netaddr6.MustPrefix("2001:db8:9:1::/64")
	for i := 0; i < 50; i++ {
		src := netaddr6.RandomAddrIn(net64, rng)
		ts = feed(e, ts, src, 8, i*8)
	}
	alerts := e.Flush()
	if len(alerts) != 1 {
		t.Fatalf("alerts: %v", alerts)
	}
	if alerts[0].Level != netaddr6.Agg64 || !alerts[0].Escalated {
		t.Errorf("alert: %+v", alerts[0])
	}
	if alerts[0].Prefix != net64 {
		t.Errorf("prefix = %v", alerts[0].Prefix)
	}
}

func TestSpreadOver48Escalates(t *testing.T) {
	// 40 /64s in one /48, 5 dsts each (AS #18 pattern scaled).
	e := New(DefaultConfig())
	ts := t0
	net48 := netaddr6.MustPrefix("2001:db8:18::/48")
	for i := 0; i < 40; i++ {
		src := netaddr6.WithIID(netaddr6.NthSubprefix(net48, 64, uint64(i)).Addr(), 1)
		ts = feed(e, ts, src, 5, i*5)
	}
	alerts := e.Flush()
	if len(alerts) != 1 || alerts[0].Level != netaddr6.Agg48 {
		t.Fatalf("alerts: %v", alerts)
	}
}

func TestCloudTenantsNotMerged(t *testing.T) {
	// Two independent heavy scanners in different /64s of one /48
	// (cloud tenants): each deserves its own /64-or-finer alert and the
	// /48 must be suppressed — no collateral blocklisting.
	e := New(DefaultConfig())
	ts := t0
	a := netaddr6.MustAddr("2001:db8:c:1::1")
	b := netaddr6.MustAddr("2001:db8:c:2::1")
	for i := 0; i < 150; i++ {
		dstA := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(i+1))
		dstB := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(5000+i))
		e.Process(rec(ts, a, dstA))
		e.Process(rec(ts, b, dstB))
		ts = ts.Add(time.Second)
	}
	alerts := e.Flush()
	if len(alerts) != 2 {
		t.Fatalf("alerts: %v", alerts)
	}
	for _, al := range alerts {
		if al.Level != netaddr6.Agg128 {
			t.Errorf("tenant alert at %v (collateral damage): %v", al.Level, al.Prefix)
		}
	}
}

func TestMixedEntityEscalation(t *testing.T) {
	// One strong /128 plus diffuse activity across its /64: the /128
	// alert fires, and the /64 fires too (escalated) because the /128
	// explains under 90% of the aggregate.
	e := New(DefaultConfig())
	ts := t0
	strong := netaddr6.MustAddr("2001:db8:a:1::1")
	ts = feed(e, ts, strong, 120, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		src := netaddr6.RandomAddrIn(netaddr6.MustPrefix("2001:db8:a:1::/64"), rng)
		ts = feed(e, ts, src, 4, 1000+i*4)
	}
	alerts := e.Flush()
	if len(alerts) != 2 {
		t.Fatalf("alerts: %v", alerts)
	}
	if alerts[0].Level == alerts[1].Level {
		t.Errorf("expected /128 + /64, got %v and %v", alerts[0].Level, alerts[1].Level)
	}
}

func TestTimeoutEviction(t *testing.T) {
	e := New(DefaultConfig())
	feed(e, t0, netaddr6.MustAddr("2001:db8:bad0::1"), 150, 0)
	if e.Candidates(netaddr6.Agg128) == 0 {
		t.Fatal("no candidates")
	}
	e.Tick(t0.Add(3 * time.Hour))
	if e.Candidates(netaddr6.Agg128) != 0 {
		t.Error("idle candidate not evicted")
	}
	alerts := e.Drain()
	if len(alerts) != 1 {
		t.Fatalf("alerts after tick: %v", alerts)
	}
}

func TestBelowThresholdSilent(t *testing.T) {
	e := New(DefaultConfig())
	feed(e, t0, netaddr6.MustAddr("2001:db8:0c::1"), 50, 0)
	if alerts := e.Flush(); len(alerts) != 0 {
		t.Errorf("alerts for 50 dsts: %v", alerts)
	}
}

func TestMemoryBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SketchPrecision = 8 // 256 B per candidate
	e := New(cfg)
	rng := rand.New(rand.NewSource(3))
	ts := t0
	// 1000 sources, heavy destinations each: exact sets would cost
	// ~32 B × dsts; sketches stay constant.
	for i := 0; i < 1000; i++ {
		src := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:33::"), uint64(i+1))
		for j := 0; j < 50; j++ {
			dst := netaddr6.RandomAddrIn(netaddr6.MustPrefix("2001:db8:f::/48"), rng)
			e.Process(rec(ts, src, dst))
		}
		ts = ts.Add(time.Second)
	}
	// 1000 /128 candidates + 1 /64 + 1 /48 + 1 /32 ≈ 1003 sketches.
	if got := e.MemoryBytes(); got > 1100*256 {
		t.Errorf("memory = %d bytes", got)
	}
}

func TestMaxCandidatesBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCandidates = 10
	e := New(cfg)
	ts := t0
	for i := 0; i < 50; i++ {
		src := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:44::"), uint64(i+1))
		e.Process(rec(ts, src, netaddr6.MustAddr("2001:db8:f::1")))
		ts = ts.Add(time.Millisecond)
	}
	if e.Candidates(netaddr6.Agg128) != 10 {
		t.Errorf("candidates = %d, want 10", e.Candidates(netaddr6.Agg128))
	}
	if e.DroppedCandidates() == 0 {
		t.Error("drop counter not incremented")
	}
}

// TestLevelOrderHoistedToNew pins the level-ordering contract: New
// normalizes the level order once (most specific first) without
// mutating the caller's slice, and sweep relies on that order — so a
// config listing levels coarsest-first must produce identical alerts.
func TestLevelOrderHoistedToNew(t *testing.T) {
	run := func(levels []netaddr6.AggLevel) []Alert {
		cfg := DefaultConfig()
		cfg.Levels = levels
		e := New(cfg)
		ts := feed(e, t0, netaddr6.MustAddr("2001:db8:bad0::1"), 200, 0)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 40; i++ {
			src := netaddr6.RandomAddrIn(netaddr6.MustPrefix("2001:db8:bad1::/64"), rng)
			ts = feed(e, ts, src, 8, 1000+i*8)
		}
		return e.Flush()
	}
	coarseFirst := []netaddr6.AggLevel{netaddr6.Agg32, netaddr6.Agg48, netaddr6.Agg64, netaddr6.Agg128}
	fineFirst := []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32}

	got, want := run(coarseFirst), run(fineFirst)
	if len(got) != len(want) {
		t.Fatalf("alert counts differ by config level order: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("alert %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	// The most specific level must win regardless of config order.
	if want[0].Level != netaddr6.Agg128 && want[1].Level != netaddr6.Agg128 {
		t.Errorf("no /128 alert: %v", want)
	}
	// New must not reorder the caller's slice.
	if coarseFirst[0] != netaddr6.Agg32 || coarseFirst[3] != netaddr6.Agg128 {
		t.Errorf("New mutated the caller's Levels slice: %v", coarseFirst)
	}
	// The engine's normalized config is most specific first.
	e := New(Config{Levels: coarseFirst})
	if lv := e.Config().Levels; lv[0] != netaddr6.Agg128 || lv[3] != netaddr6.Agg32 {
		t.Errorf("normalized levels not most specific first: %v", lv)
	}
}

// TestInlineCandidateFastPath pins the lazy-sketch behavior: a
// single-destination candidate costs no sketch memory and still
// estimates exactly 1.
func TestInlineCandidateFastPath(t *testing.T) {
	e := New(DefaultConfig())
	src := netaddr6.MustAddr("2001:db8:77::1")
	dst := netaddr6.MustAddr("2001:db8:f::1")
	for i := 0; i < 10; i++ {
		e.Process(rec(t0.Add(time.Duration(i)*time.Second), src, dst))
	}
	if got := e.MemoryBytes(); got != 0 {
		t.Errorf("single-dst candidates allocated %d sketch bytes", got)
	}
	// A second distinct destination materializes sketches at every
	// level that still has headroom.
	e.Process(rec(t0.Add(time.Minute), src, netaddr6.MustAddr("2001:db8:f::2")))
	if got := e.MemoryBytes(); got == 0 {
		t.Error("multi-dst candidate has no sketch")
	}
	if alerts := e.Flush(); len(alerts) != 0 {
		t.Errorf("below-threshold candidates alerted: %v", alerts)
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{
		Prefix: netaddr6.MustPrefix("2001:db8::/64"), Level: netaddr6.Agg64,
		EstimatedDsts: 123, Packets: 456, First: t0, Last: t0.Add(time.Hour), Escalated: true,
	}
	s := a.String()
	if s == "" || a.Prefix.String() == "" {
		t.Error("empty render")
	}
	for _, want := range []string{"2001:db8::/64", "123", "456", "escalated"} {
		if !contains(s, want) {
			t.Errorf("render %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
