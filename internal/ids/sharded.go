package ids

import (
	"time"

	"v6scan/internal/core"
	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// ShardedEngine runs the dynamic-aggregation IDS across N worker
// shards in parallel, mirroring core.ShardedDetector. Records are
// partitioned by their source aggregated to the *coarsest* configured
// level, so every candidate at every level — finer prefixes nest
// inside the coarsest — lives in exactly one shard, and the
// suppression/escalation logic (which only ever compares nested
// prefixes) sees the same candidates it would in a single Engine.
// Combined with the engines' deterministic alert ordering, the merged
// output is byte-identical to a single Engine's at any shard count
// (see TestShardedIDSParity) — with one caveat: each shard applies
// Config.MaxCandidates to its own tables, so under cap pressure a
// sharded engine admits candidates (and so may emit alerts) a single
// engine would have dropped.
//
// Each shard owns a private Engine; partitioning, staging, the worker
// goroutines and their pooled batch buffers are the shared
// dispatch.Dispatcher's (IDS workers cannot fail, so the dispatcher's
// error path stays unused). Tick forwards the eviction horizon to
// every shard, carrying the globally latest record time so per-shard
// eviction decisions match the single-engine ones exactly. Flush
// drains the workers and merges alerts deterministically; the engine
// is not reusable afterwards.
type ShardedEngine struct {
	cfg    Config
	shards []*Engine
	disp   *dispatch.Dispatcher

	// lastSeen is the latest record timestamp handed in; Tick forwards
	// max(now, lastSeen) so a shard that saw only early records still
	// evicts against the global clock.
	lastSeen time.Time
	flushed  bool
}

// NewSharded returns an IDS engine running the configuration's
// aggregation levels across n parallel shards. n < 1 is treated as 1;
// a single shard still processes on one worker goroutine but is
// byte-identical (and close in cost) to a plain Engine.
func NewSharded(cfg Config, n int) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	// Normalize the config once so every shard agrees (New applies the
	// same defaults).
	probe := New(cfg)
	cfg = probe.Config()

	se := &ShardedEngine{cfg: cfg, shards: make([]*Engine, n)}
	for i := range se.shards {
		if i == 0 {
			se.shards[i] = probe
		} else {
			se.shards[i] = New(cfg)
		}
	}
	se.disp = dispatch.New(dispatch.Config{
		Shards: n,
		Level:  core.CoarsestLevel(cfg.Levels),
	}, func(shard int, recs []firewall.Record, mark time.Time) error {
		e := se.shards[shard]
		if !mark.IsZero() {
			e.Tick(mark)
		}
		e.ProcessBatch(recs)
		return nil
	})
	return se
}

// Config returns the (normalized) engine configuration.
func (se *ShardedEngine) Config() Config { return se.cfg }

// NumShards returns the worker count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// QueueDepth reports the dispatcher's buffered work-unit backlog,
// summed over shards. Safe from any goroutine (see
// dispatch.Dispatcher.QueueDepth); the metrics registry exports it as
// a gauge.
func (se *ShardedEngine) QueueDepth() int { return se.disp.QueueDepth() }

// Process ingests one record, staging it until a batch accumulates.
func (se *ShardedEngine) Process(r firewall.Record) {
	if se.flushed {
		panic("ids: ShardedEngine used after Flush")
	}
	if r.Time.After(se.lastSeen) {
		se.lastSeen = r.Time
	}
	se.disp.Process(r)
}

// ProcessBatch partitions a run of records across the shards and
// dispatches it. The slice is not retained, so callers may reuse the
// backing array between calls.
func (se *ShardedEngine) ProcessBatch(recs []firewall.Record) {
	if se.flushed {
		panic("ids: ShardedEngine used after Flush")
	}
	for i := range recs {
		if recs[i].Time.After(se.lastSeen) {
			se.lastSeen = recs[i].Time
		}
	}
	se.disp.ProcessBatch(recs)
}

// Tick advances time on every shard, evicting idle candidates exactly
// as a single Engine would: the forwarded horizon is the later of now
// and the latest dispatched record time, so shards whose own records
// lag the global clock still close the same candidates. Pending staged
// records are dispatched first so eviction sees them.
func (se *ShardedEngine) Tick(now time.Time) {
	if se.flushed {
		panic("ids: ShardedEngine used after Flush")
	}
	if se.lastSeen.After(now) {
		now = se.lastSeen
	}
	se.disp.Mark(now)
}

// Drain returns and clears the alerts accumulated by past Ticks across
// all shards, merged into the same deterministic order a single
// Engine's Drain produces. It synchronizes with the workers, so it is
// safe (though not free) to call from the dispatching goroutine at any
// point between batches.
func (se *ShardedEngine) Drain() []Alert {
	se.sync()
	var out []Alert
	for _, e := range se.shards {
		out = append(out, e.Drain()...)
	}
	sortAlerts(out)
	return out
}

// Flush dispatches any staged records, stops the workers, evicts every
// candidate, and returns all pending alerts merged deterministically.
// The engine is not reusable afterwards (Drain and the accessors
// remain valid).
func (se *ShardedEngine) Flush() []Alert {
	if !se.flushed {
		se.disp.Close()
		se.flushed = true
	}
	var out []Alert
	for _, e := range se.shards {
		// Per-shard Flush sweeps everything; ordering is restored by
		// the merged sort below.
		out = append(out, e.Flush()...)
	}
	sortAlerts(out)
	return out
}

// Candidates returns the current working-set size at a level across
// all shards.
func (se *ShardedEngine) Candidates(l netaddr6.AggLevel) int {
	se.sync()
	total := 0
	for _, e := range se.shards {
		total += e.Candidates(l)
	}
	return total
}

// MemoryBytes estimates sketch memory across all shards and levels.
func (se *ShardedEngine) MemoryBytes() int {
	se.sync()
	total := 0
	for _, e := range se.shards {
		total += e.MemoryBytes()
	}
	return total
}

// DroppedCandidates reports how many candidates were rejected by the
// per-level MaxCandidates bound, summed over shards. Note each shard
// applies the bound to its own tables, so a sharded engine may admit
// up to n times more candidates than a single engine with the same
// configuration.
//
// The per-shard counters are atomic, so — unlike Candidates or
// MemoryBytes — this is safe from any goroutine without a dispatcher
// barrier; a concurrent read may lag batches still in flight.
func (se *ShardedEngine) DroppedCandidates() uint64 {
	var total uint64
	for _, e := range se.shards {
		total += e.DroppedCandidates()
	}
	return total
}

// DroppedPerShard returns each shard's MaxCandidates drop count,
// indexed by shard. Safe from any goroutine (see DroppedCandidates);
// the metrics registry exports one labeled series per entry.
func (se *ShardedEngine) DroppedPerShard() []uint64 {
	out := make([]uint64, len(se.shards))
	for i, e := range se.shards {
		out[i] = e.DroppedCandidates()
	}
	return out
}

// sync makes shard state safe to read from the dispatching goroutine:
// a dispatcher barrier while the workers run, a no-op once Flush has
// joined them.
func (se *ShardedEngine) sync() {
	if !se.flushed {
		se.disp.Barrier()
	}
}
