package ids

import (
	"sync"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// ShardedEngine runs the dynamic-aggregation IDS across N worker
// shards in parallel, mirroring core.ShardedDetector. Records are
// partitioned by their source aggregated to the *coarsest* configured
// level, so every candidate at every level — finer prefixes nest
// inside the coarsest — lives in exactly one shard, and the
// suppression/escalation logic (which only ever compares nested
// prefixes) sees the same candidates it would in a single Engine.
// Combined with the engines' deterministic alert ordering, the merged
// output is byte-identical to a single Engine's at any shard count
// (see TestShardedIDSParity) — with one caveat: each shard applies
// Config.MaxCandidates to its own tables, so under cap pressure a
// sharded engine admits candidates (and so may emit alerts) a single
// engine would have dropped.
//
// Each shard owns a private Engine and consumes batches from a
// channel; ProcessBatch partitions input while workers drain previous
// batches. Tick forwards the eviction horizon to every shard, carrying
// the globally latest record time so per-shard eviction decisions
// match the single-engine ones exactly. Flush drains the workers and
// merges alerts deterministically; the engine is not reusable
// afterwards.
type ShardedEngine struct {
	cfg      Config
	shardLvl netaddr6.AggLevel
	shards   []*Engine
	chans    []chan idsMsg
	wg       sync.WaitGroup

	// buf stages single-record Process calls until batchSize is
	// reached; ProcessBatch bypasses it.
	buf       []firewall.Record
	batchSize int
	// lastSeen is the latest record timestamp dispatched; Tick
	// forwards max(now, lastSeen) so a shard that saw only early
	// records still evicts against the global clock.
	lastSeen time.Time
	flushed  bool
}

// idsMsg is one unit of work for a shard: a run of records and/or a
// tick horizon, or a barrier request (done non-nil).
type idsMsg struct {
	recs []firewall.Record
	tick time.Time
	done chan<- struct{}
}

// defaultIDSBatch is the staging size for the single-record Process
// path; large enough to amortize channel traffic, small enough that
// streaming callers see timely progress.
const defaultIDSBatch = 2048

// NewSharded returns an IDS engine running the configuration's
// aggregation levels across n parallel shards. n < 1 is treated as 1;
// a single shard still processes on one worker goroutine but is
// byte-identical (and close in cost) to a plain Engine.
func NewSharded(cfg Config, n int) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	// Normalize the config once so every shard agrees (New applies the
	// same defaults).
	probe := New(cfg)
	cfg = probe.Config()

	se := &ShardedEngine{
		cfg:       cfg,
		shardLvl:  core.CoarsestLevel(cfg.Levels),
		shards:    make([]*Engine, n),
		chans:     make([]chan idsMsg, n),
		batchSize: defaultIDSBatch,
	}
	for i := range se.shards {
		if i == 0 {
			se.shards[i] = probe
		} else {
			se.shards[i] = New(cfg)
		}
		se.chans[i] = make(chan idsMsg, 4)
		se.wg.Add(1)
		go se.worker(i)
	}
	return se
}

// Config returns the (normalized) engine configuration.
func (se *ShardedEngine) Config() Config { return se.cfg }

// NumShards returns the worker count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

func (se *ShardedEngine) worker(i int) {
	defer se.wg.Done()
	e := se.shards[i]
	for msg := range se.chans[i] {
		if !msg.tick.IsZero() {
			e.Tick(msg.tick)
		}
		e.ProcessBatch(msg.recs)
		if msg.done != nil {
			msg.done <- struct{}{}
		}
	}
}

// Process ingests one record, staging it until a batch accumulates.
func (se *ShardedEngine) Process(r firewall.Record) {
	if se.flushed {
		panic("ids: ShardedEngine used after Flush")
	}
	se.buf = append(se.buf, r)
	if len(se.buf) >= se.batchSize {
		se.flushBuf()
	}
}

// ProcessBatch partitions a run of records across the shards and
// dispatches it. The slice is not retained, so callers may reuse the
// backing array between calls.
func (se *ShardedEngine) ProcessBatch(recs []firewall.Record) {
	se.flushBuf()
	se.dispatch(recs, time.Time{})
}

func (se *ShardedEngine) flushBuf() {
	if len(se.buf) > 0 {
		se.dispatch(se.buf, time.Time{})
		se.buf = se.buf[:0]
	}
}

func (se *ShardedEngine) dispatch(recs []firewall.Record, tick time.Time) {
	if se.flushed {
		panic("ids: ShardedEngine used after Flush")
	}
	for _, r := range recs {
		if r.Time.After(se.lastSeen) {
			se.lastSeen = r.Time
		}
	}
	if len(se.shards) == 1 {
		if len(recs) > 0 || !tick.IsZero() {
			batch := make([]firewall.Record, len(recs))
			copy(batch, recs)
			se.chans[0] <- idsMsg{recs: batch, tick: tick}
		}
		return
	}
	parts := make([][]firewall.Record, len(se.shards))
	sizeHint := len(recs)/len(se.shards) + len(recs)/8 + 1
	for _, r := range recs {
		i := core.PartitionShard(r.Src, se.shardLvl, len(se.shards))
		if parts[i] == nil {
			parts[i] = make([]firewall.Record, 0, sizeHint)
		}
		parts[i] = append(parts[i], r)
	}
	for i, part := range parts {
		if len(part) > 0 || !tick.IsZero() {
			se.chans[i] <- idsMsg{recs: part, tick: tick}
		}
	}
}

// Tick advances time on every shard, evicting idle candidates exactly
// as a single Engine would: the forwarded horizon is the later of now
// and the latest dispatched record time, so shards whose own records
// lag the global clock still close the same candidates. Pending staged
// records are dispatched first so eviction sees them.
func (se *ShardedEngine) Tick(now time.Time) {
	se.flushBuf()
	if se.lastSeen.After(now) {
		now = se.lastSeen
	}
	se.dispatch(nil, now)
}

// barrier blocks until every shard has processed all queued work, after
// which the dispatching goroutine may touch shard engines directly
// (the channel round-trip establishes the happens-before edge).
func (se *ShardedEngine) barrier() {
	done := make(chan struct{}, len(se.shards))
	for _, ch := range se.chans {
		ch <- idsMsg{done: done}
	}
	for range se.shards {
		<-done
	}
}

// Drain returns and clears the alerts accumulated by past Ticks across
// all shards, merged into the same deterministic order a single
// Engine's Drain produces. It synchronizes with the workers, so it is
// safe (though not free) to call from the dispatching goroutine at any
// point between batches.
func (se *ShardedEngine) Drain() []Alert {
	var out []Alert
	if se.flushed {
		for _, e := range se.shards {
			out = append(out, e.Drain()...)
		}
	} else {
		se.flushBuf()
		se.barrier()
		for _, e := range se.shards {
			out = append(out, e.Drain()...)
		}
	}
	sortAlerts(out)
	return out
}

// Flush dispatches any staged records, stops the workers, evicts every
// candidate, and returns all pending alerts merged deterministically.
// The engine is not reusable afterwards (Drain and the accessors
// remain valid).
func (se *ShardedEngine) Flush() []Alert {
	if !se.flushed {
		se.flushBuf()
		se.flushed = true
		for _, ch := range se.chans {
			close(ch)
		}
		se.wg.Wait()
	}
	var out []Alert
	for _, e := range se.shards {
		// Per-shard Flush sweeps everything; ordering is restored by
		// the merged sort below.
		out = append(out, e.Flush()...)
	}
	sortAlerts(out)
	return out
}

// Candidates returns the current working-set size at a level across
// all shards.
func (se *ShardedEngine) Candidates(l netaddr6.AggLevel) int {
	se.sync()
	total := 0
	for _, e := range se.shards {
		total += e.Candidates(l)
	}
	return total
}

// MemoryBytes estimates sketch memory across all shards and levels.
func (se *ShardedEngine) MemoryBytes() int {
	se.sync()
	total := 0
	for _, e := range se.shards {
		total += e.MemoryBytes()
	}
	return total
}

// DroppedCandidates reports how many candidates were rejected by the
// per-level MaxCandidates bound, summed over shards. Note each shard
// applies the bound to its own tables, so a sharded engine may admit
// up to n times more candidates than a single engine with the same
// configuration.
func (se *ShardedEngine) DroppedCandidates() uint64 {
	se.sync()
	var total uint64
	for _, e := range se.shards {
		total += e.DroppedCandidates()
	}
	return total
}

// sync makes shard state safe to read from the dispatching goroutine.
func (se *ShardedEngine) sync() {
	if !se.flushed {
		se.flushBuf()
		se.barrier()
	}
}
