package ids

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// droppedRecords builds records from many distinct /128 sources so a
// tiny MaxCandidates bound must reject most of them.
func droppedRecords(n int) []firewall.Record {
	base := time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		src := netip.MustParseAddr(fmt.Sprintf("2001:db8:%x::%x", i>>8, i&0xff+1))
		recs = append(recs, firewall.Record{
			Time: base.Add(time.Duration(i) * time.Second),
			Src:  src,
			Dst:  netip.MustParseAddr("2001:db8:ffff::1"),
		})
	}
	return recs
}

func TestDroppedCandidatesCounter(t *testing.T) {
	cfg := Config{MaxCandidates: 4, Levels: []netaddr6.AggLevel{netaddr6.Agg128}}
	e := New(cfg)
	for _, r := range droppedRecords(64) {
		e.Process(r)
	}
	// 64 distinct /128 sources against a 4-candidate table: 60 drops.
	if got := e.DroppedCandidates(); got != 60 {
		t.Fatalf("DroppedCandidates = %d, want 60", got)
	}
}

// TestDroppedCandidatesConcurrentRead reads the drop counter from a
// scrape goroutine while the engine processes — the access pattern the
// metrics registry uses — and must stay race-clean.
func TestDroppedCandidatesConcurrentRead(t *testing.T) {
	cfg := Config{MaxCandidates: 2, Levels: []netaddr6.AggLevel{netaddr6.Agg128}}
	e := New(cfg)
	recs := droppedRecords(2048)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			if v := e.DroppedCandidates(); v < last {
				t.Error("drop counter went backwards")
				return
			} else {
				last = v
			}
		}
	}()
	for _, r := range recs {
		e.Process(r)
	}
	close(done)
	wg.Wait()
	if got := e.DroppedCandidates(); got != 2046 {
		t.Fatalf("DroppedCandidates = %d, want 2046", got)
	}
}

func TestDroppedPerShard(t *testing.T) {
	cfg := Config{MaxCandidates: 2, Levels: []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg32}}
	se := NewSharded(cfg, 4)
	recs := droppedRecords(512)
	se.ProcessBatch(recs)
	se.Flush()
	per := se.DroppedPerShard()
	if len(per) != 4 {
		t.Fatalf("DroppedPerShard len = %d, want 4", len(per))
	}
	var sum uint64
	for _, v := range per {
		sum += v
	}
	if total := se.DroppedCandidates(); sum != total {
		t.Fatalf("per-shard sum %d != total %d", sum, total)
	}
	if sum == 0 {
		t.Fatal("expected drops with MaxCandidates=2 and 512 sources")
	}
}
