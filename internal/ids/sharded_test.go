package ids

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// idsParityRecords synthesizes a workload exercising every sharding
// edge: sources spread across many /32s (so shards balance), several
// /64s per /48 and /128s per /64 (so spread-source activity escalates
// to coarser levels while fine levels stay below threshold — the
// AS #9/#18 patterns), session gaps above the timeout (so candidates
// close and reopen), and one heavy /128 scanner (so the most specific
// level alerts too and exercises suppression of its aggregates).
func idsParityRecords(n int) []firewall.Record {
	rng := rand.New(rand.NewSource(23))
	base := netaddr6.MustPrefix("2001:d00::/24")
	dsts := netaddr6.MustPrefix("2001:db8:f000::/44")
	heavy := netaddr6.MustAddr("2001:d42:1:1::bad")
	burst64 := netaddr6.MustPrefix("2001:d77:7:7::/64")
	ts := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		src := heavy
		switch {
		case i < 8_000 && i%37 == 5:
			// A spread-/64 actor that goes quiet early, so timeout
			// eviction (Tick) emits its escalated alert mid-stream.
			src = netaddr6.WithIID(burst64.Addr(), uint64(1+i%23))
		case i%11 != 0:
			p32 := netaddr6.NthSubprefix(base, 32, uint64(i%13))
			p48 := netaddr6.NthSubprefix(p32, 48, uint64(i%7))
			p64 := netaddr6.NthSubprefix(p48, 64, uint64(i%5))
			src = netaddr6.WithIID(p64.Addr(), uint64(1+i%9))
		}
		recs = append(recs, firewall.Record{
			Time:    ts,
			Src:     src,
			Dst:     netaddr6.RandomAddrIn(dsts, rng),
			Proto:   layers.ProtoTCP,
			SrcPort: uint16(40000 + i%1000),
			DstPort: uint16(1 + i%512),
			Length:  uint16(60 + i%4),
		})
		step := 50 * time.Millisecond
		if i%15000 == 14999 {
			// Periodic lull above the timeout splits candidates.
			step = 2 * time.Hour
		}
		ts = ts.Add(step)
	}
	return recs
}

func idsParityConfig() Config {
	return Config{
		MinDsts: 20,
		Timeout: time.Hour,
		Levels:  []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32},
	}
}

// canonicalAlerts renders an alert list including every field so two
// lists compare byte for byte.
func canonicalAlerts(alerts []Alert) string {
	var b strings.Builder
	for _, a := range alerts {
		fmt.Fprintf(&b, "%v %v est=%d pk=%d %d %d esc=%v\n",
			a.Prefix, a.Level, a.EstimatedDsts, a.Packets,
			a.First.UnixNano(), a.Last.UnixNano(), a.Escalated)
	}
	return b.String()
}

// TestShardedIDSParity feeds the identical record stream to an
// unsharded Engine and to ShardedEngines at several shard counts, with
// identical Tick cadence and a mid-stream Drain, and requires
// byte-identical alert output — including the coarser-escalation
// (spread-source) alerts.
func TestShardedIDSParity(t *testing.T) {
	recs := idsParityRecords(50_000)
	cfg := idsParityConfig()

	ref := New(cfg)
	var wantMid string
	for j, r := range recs {
		ref.Process(r)
		if j%10_000 == 9_999 {
			ref.Tick(r.Time)
		}
		if j == 30_000 {
			wantMid = canonicalAlerts(ref.Drain())
		}
	}
	want := canonicalAlerts(ref.Flush())
	if want == "" || wantMid == "" {
		t.Fatalf("reference produced no alerts (final %d bytes, mid %d bytes)", len(want), len(wantMid))
	}
	if !strings.Contains(wantMid+want, "esc=true") {
		t.Fatal("workload produced no escalated (spread-source) alert")
	}
	if !strings.Contains(want, "/128") {
		t.Fatal("workload produced no most-specific alert")
	}

	for _, shards := range []int{1, 2, 8} {
		se := NewSharded(cfg, shards)
		var gotMid string
		// Mixed feeding: odd batch sizes plus the staged Process path,
		// with Ticks and the mid-stream Drain at the reference points.
		// Batches never cross a tick boundary — Tick's horizon is the
		// latest dispatched record, so a batch overshooting the
		// reference's tick point would advance eviction early.
		for j := 0; j < len(recs); {
			if j%3 == 0 {
				end := min(j+257, len(recs), (j/10_000+1)*10_000)
				se.ProcessBatch(recs[j:end])
				for k := j; k < end; k++ {
					if err := checkpoints(k, se, &gotMid); err != nil {
						t.Fatal(err)
					}
				}
				j = end
			} else {
				se.Process(recs[j])
				if err := checkpoints(j, se, &gotMid); err != nil {
					t.Fatal(err)
				}
				j++
			}
		}
		got := canonicalAlerts(se.Flush())
		if gotMid != wantMid {
			t.Errorf("shards=%d: mid-stream Drain differs from unsharded\n got:\n%s\nwant:\n%s", shards, gotMid, wantMid)
		}
		if got != want {
			t.Errorf("shards=%d: final alerts differ from unsharded\n got:\n%s\nwant:\n%s", shards, got, want)
		}
	}
}

// checkpoints applies the reference run's Tick/Drain schedule to the
// sharded engine as record index j is passed.
func checkpoints(j int, se *ShardedEngine, mid *string) error {
	if j%10_000 == 9_999 {
		se.Tick(time.Time{}) // horizon comes from lastSeen, as in the reference
	}
	if j == 30_000 {
		*mid = canonicalAlerts(se.Drain())
	}
	return nil
}

// TestShardedIDSSingleShardClamp sanity-checks the n<1 clamp and that
// an empty stream yields no alerts.
func TestShardedIDSSingleShardClamp(t *testing.T) {
	se := NewSharded(idsParityConfig(), 0)
	if se.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", se.NumShards())
	}
	if alerts := se.Flush(); len(alerts) != 0 {
		t.Fatalf("empty stream produced alerts: %v", alerts)
	}
}

// TestShardedIDSAccessors exercises the synchronized diagnostics while
// workers are live.
func TestShardedIDSAccessors(t *testing.T) {
	se := NewSharded(idsParityConfig(), 4)
	recs := idsParityRecords(5_000)
	se.ProcessBatch(recs)
	if got := se.Candidates(netaddr6.Agg128); got == 0 {
		t.Error("no /128 candidates while stream active")
	}
	if se.MemoryBytes() == 0 {
		t.Error("no sketch memory with multi-dst candidates active")
	}
	if n := se.DroppedCandidates(); n != 0 {
		t.Errorf("dropped = %d, want 0 (bound not configured)", n)
	}
	if len(se.Flush()) == 0 {
		t.Error("no alerts from workload")
	}
}
