package ids

// Versioned snapshot/restore for the IDS engine (checkpoint format
// kind 2), mirroring the detector's (see internal/core/snapshot.go for
// the cut semantics and canonical-encoding invariants). Candidate
// tables serialize per level as one global key-sorted sequence across
// shards; restore re-partitions deterministically, so shard count may
// change between save and load.
//
// Two pieces of engine state need care:
//
//   - the engine clock (now) serializes once, globally, as the maximum
//     over shards, and restores into every shard. Ticks forward a
//     global horizon (max of now and the latest record time) and the
//     final sweep ignores now entirely, so a shard whose private clock
//     lagged the global one behaves identically after restore;
//   - each level's oldest-activity bound is recomputed tight (the
//     minimum surviving candidate's last activity) rather than
//     serialized: the bound only gates a skip-the-table-scan fast
//     path, and a tighter bound provably never changes which
//     candidates close or what alerts emit.

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/checkpoint"
	"v6scan/internal/core"
	"v6scan/internal/dispatch"
	"v6scan/internal/netaddr6"
)

// Snapshot writes a consistent checkpoint of the engine at the given
// stream-time mark. The caller guarantees every record with timestamp
// before mark has been processed and none at or after it has.
func (e *Engine) Snapshot(w io.Writer, mark time.Time) error {
	return snapshotEngines(w, e.cfg, []*Engine{e}, mark)
}

// Snapshot writes a consistent checkpoint of the sharded engine: a
// dispatcher barrier drains in-flight batches, then all shards
// serialize as one canonical global snapshot — byte-identical to the
// snapshot an unsharded engine would write at the same cut.
func (se *ShardedEngine) Snapshot(w io.Writer, mark time.Time) error {
	if se.flushed {
		return fmt.Errorf("ids: ShardedEngine.Snapshot after Flush")
	}
	if err := se.disp.Barrier(); err != nil {
		return err
	}
	return snapshotEngines(w, se.cfg, se.shards, mark)
}

// RestoreEngine rebuilds an engine from a snapshot opened with
// checkpoint.NewReader.
func RestoreEngine(cr *checkpoint.Reader) (*Engine, error) {
	engines, err := restoreEngines(cr, 1, func(cfg Config) []*Engine {
		return []*Engine{New(cfg)}
	})
	if err != nil {
		return nil, err
	}
	return engines[0], nil
}

// RestoreShardedEngine rebuilds a sharded engine from a snapshot,
// re-partitioning every candidate deterministically across n shards —
// n need not match the shard count the snapshot was taken at.
func RestoreShardedEngine(cr *checkpoint.Reader, n int) (*ShardedEngine, error) {
	if n < 1 {
		n = 1
	}
	var se *ShardedEngine
	_, err := restoreEngines(cr, n, func(cfg Config) []*Engine {
		se = NewSharded(cfg, n)
		return se.shards
	})
	if err != nil {
		if se != nil {
			se.disp.Close()
		}
		return nil, err
	}
	se.lastSeen = cr.Header().Horizon
	return se, nil
}

func snapshotEngines(w io.Writer, cfg Config, engines []*Engine, mark time.Time) error {
	cw, err := checkpoint.NewWriter(w, checkpoint.KindIDS, mark)
	if err != nil {
		return err
	}
	var e checkpoint.Enc
	encodeIDSConfig(&e, cfg)
	if err := cw.Section(checkpoint.SecConfig, e.B); err != nil {
		return err
	}
	// One global section per level: candidates from every shard, sorted
	// by key, independent of shard count and map iteration order.
	type keyed struct {
		key netaddr6.U128
		c   *candidate
	}
	var cands []keyed
	for li := range cfg.Levels {
		cands = cands[:0]
		for _, eng := range engines {
			lv := eng.levels[li]
			lv.idx.Range(func(key netaddr6.U128, h uint32) bool {
				cands = append(cands, keyed{key, lv.candidate(h)})
				return true
			})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].key.Cmp(cands[j].key) < 0 })
		e.B = e.B[:0]
		e.Varint(int64(cfg.Levels[li]))
		e.Uvarint(uint64(len(cands)))
		for _, kc := range cands {
			encodeCandidate(&e, kc.key, kc.c)
		}
		if err := cw.Section(checkpoint.SecLevel, e.B); err != nil {
			return err
		}
	}
	// Global engine state: the clock (max over shards), the drop
	// counter sum, and the pending alerts in a full total order (every
	// field is a tie-breaker, so the encoding is deterministic even if
	// two alerts collide on the sort keys Drain uses).
	e.B = e.B[:0]
	var now time.Time
	var dropped uint64
	var alerts []Alert
	for _, eng := range engines {
		if eng.now.After(now) {
			now = eng.now
		}
		dropped += eng.dropped.Load()
		alerts = append(alerts, eng.alerts...)
	}
	sort.Slice(alerts, func(i, j int) bool { return alertLess(&alerts[i], &alerts[j]) })
	e.Time(now)
	e.Uvarint(dropped)
	e.Uvarint(uint64(len(alerts)))
	for i := range alerts {
		encodeAlert(&e, &alerts[i])
	}
	if err := cw.Section(checkpoint.SecResults, e.B); err != nil {
		return err
	}
	return cw.Close()
}

func restoreEngines(cr *checkpoint.Reader, n int, mk func(cfg Config) []*Engine) ([]*Engine, error) {
	hdr := cr.Header()
	if hdr.Kind != checkpoint.KindIDS {
		return nil, fmt.Errorf("%w: snapshot kind %d, want ids (%d)",
			checkpoint.ErrFormat, hdr.Kind, checkpoint.KindIDS)
	}
	var (
		engines    []*Engine
		cfg        Config
		coarsest   netaddr6.AggLevel
		sawResults bool
	)
	for {
		kind, payload, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		dec := checkpoint.NewDec(payload)
		switch kind {
		case checkpoint.SecConfig:
			if engines != nil {
				return nil, fmt.Errorf("%w: duplicate config section", checkpoint.ErrFormat)
			}
			cfg = decodeIDSConfig(dec)
			if err := dec.Err(); err != nil {
				return nil, err
			}
			engines = mk(cfg)
			// mk normalizes through New, which re-sorts levels; use the
			// normalized config so section levels resolve identically.
			cfg = engines[0].cfg
			coarsest = core.CoarsestLevel(cfg.Levels)
		case checkpoint.SecLevel:
			if engines == nil {
				return nil, fmt.Errorf("%w: level section before config", checkpoint.ErrFormat)
			}
			li, err := idsLevelIndex(cfg.Levels, netaddr6.AggLevel(dec.Varint()))
			if err != nil {
				return nil, err
			}
			count := dec.Uvarint()
			for i := uint64(0); i < count && dec.Err() == nil; i++ {
				if err := decodeCandidate(dec, engines, li, coarsest, n); err != nil {
					return nil, err
				}
			}
			if err := dec.Err(); err != nil {
				return nil, err
			}
		case checkpoint.SecResults:
			if engines == nil {
				return nil, fmt.Errorf("%w: results section before config", checkpoint.ErrFormat)
			}
			if sawResults {
				return nil, fmt.Errorf("%w: duplicate results section", checkpoint.ErrFormat)
			}
			sawResults = true
			now := dec.Time()
			for _, eng := range engines {
				eng.now = now
			}
			engines[0].dropped.Store(dec.Uvarint())
			alertN := dec.Uvarint()
			for i := uint64(0); i < alertN && dec.Err() == nil; i++ {
				engines[0].alerts = append(engines[0].alerts, decodeAlert(dec))
			}
			if err := dec.Err(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unknown section kind %d", checkpoint.ErrFormat, kind)
		}
	}
	if engines == nil {
		return nil, fmt.Errorf("%w: missing config section", checkpoint.ErrFormat)
	}
	return engines, nil
}

func encodeIDSConfig(e *checkpoint.Enc, cfg Config) {
	e.Uvarint(uint64(cfg.MinDsts))
	e.Varint(int64(cfg.Timeout))
	e.U8(cfg.SketchPrecision)
	e.F64(cfg.CoverageShare)
	e.Uvarint(uint64(cfg.MaxCandidates))
	e.Uvarint(uint64(len(cfg.Levels)))
	for _, l := range cfg.Levels {
		e.Varint(int64(l))
	}
}

func decodeIDSConfig(d *checkpoint.Dec) Config {
	cfg := Config{
		MinDsts:         int(d.Uvarint()),
		Timeout:         time.Duration(d.Varint()),
		SketchPrecision: d.U8(),
		CoverageShare:   d.F64(),
		MaxCandidates:   int(d.Uvarint()),
	}
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		cfg.Levels = append(cfg.Levels, netaddr6.AggLevel(d.Varint()))
	}
	return cfg
}

func idsLevelIndex(levels []netaddr6.AggLevel, l netaddr6.AggLevel) (int, error) {
	for i, have := range levels {
		if have == l {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: level %v not in configuration", checkpoint.ErrFormat, l)
}

// encodeCandidate writes one candidate's logical state. The inline
// single-destination fast path and the materialized sketch encode as
// distinct shapes (the sketch's registers are its complete state; the
// inline destination is the whole state before materialization), so
// restore reproduces the exact representation and a re-snapshot the
// exact bytes.
func encodeCandidate(e *checkpoint.Enc, key netaddr6.U128, c *candidate) {
	e.U64(key.Hi)
	e.U64(key.Lo)
	e.Uvarint(c.packets)
	e.Time(c.first)
	e.Time(c.last)
	if c.sketch == nil {
		e.U8(0)
		e.U64(c.firstDst.Hi)
		e.U64(c.firstDst.Lo)
		return
	}
	e.U8(1)
	e.U8(c.sketch.Precision())
	e.Raw(c.sketch.Registers())
}

// decodeCandidate rebuilds one candidate into its deterministic shard.
func decodeCandidate(d *checkpoint.Dec, engines []*Engine, li int, coarsest netaddr6.AggLevel, n int) error {
	key := netaddr6.U128{Hi: d.U64(), Lo: d.U64()}
	shard := 0
	if n > 1 {
		shard = dispatch.Partition(key.ToAddr(), coarsest, n)
	}
	lv := engines[shard].levels[li]
	h, c := lv.alloc()
	c.packets = d.Uvarint()
	c.first = d.Time()
	c.last = d.Time()
	switch flag := d.U8(); flag {
	case 0:
		c.firstDst = netaddr6.U128{Hi: d.U64(), Lo: d.U64()}
	case 1:
		precision := d.U8()
		var regs []uint8
		if precision >= 4 && precision <= 16 {
			regs = d.Raw(1 << precision)
		}
		if err := d.Err(); err != nil {
			lv.recycle(h, c)
			return err
		}
		sketch, err := core.RestoreDstSketch(precision, regs)
		if err != nil {
			lv.recycle(h, c)
			return fmt.Errorf("%w: %v", checkpoint.ErrFormat, err)
		}
		c.sketch = sketch
	default:
		lv.recycle(h, c)
		return fmt.Errorf("%w: candidate sketch flag %d", checkpoint.ErrFormat, flag)
	}
	if err := d.Err(); err != nil {
		lv.recycle(h, c)
		return err
	}
	lv.idx.Put(key, h)
	// Recompute the oldest-activity bound tight: the minimum surviving
	// last-activity time (see the package comment above for why tight
	// vs the live engine's conservative bound cannot change output).
	if lv.oldest.IsZero() || c.last.Before(lv.oldest) {
		lv.oldest = c.last
	}
	return nil
}

// alertLess is a full total order over alerts: Drain's sort keys
// first, then every remaining field, so canonical encoding never
// depends on accumulation order.
func alertLess(a, b *Alert) bool {
	if !a.First.Equal(b.First) {
		return a.First.Before(b.First)
	}
	if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
		return c < 0
	}
	if a.Prefix.Bits() != b.Prefix.Bits() {
		return a.Prefix.Bits() < b.Prefix.Bits()
	}
	if !a.Last.Equal(b.Last) {
		return a.Last.Before(b.Last)
	}
	if a.EstimatedDsts != b.EstimatedDsts {
		return a.EstimatedDsts < b.EstimatedDsts
	}
	if a.Packets != b.Packets {
		return a.Packets < b.Packets
	}
	return !a.Escalated && b.Escalated
}

func encodeAlert(e *checkpoint.Enc, a *Alert) {
	addr := netaddr6.ToU128(a.Prefix.Addr())
	e.U64(addr.Hi)
	e.U64(addr.Lo)
	e.Varint(int64(a.Prefix.Bits()))
	e.Varint(int64(a.Level))
	e.Uvarint(a.EstimatedDsts)
	e.Uvarint(a.Packets)
	e.Time(a.First)
	e.Time(a.Last)
	if a.Escalated {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func decodeAlert(d *checkpoint.Dec) Alert {
	addr := netaddr6.U128{Hi: d.U64(), Lo: d.U64()}
	bits := int(d.Varint())
	return Alert{
		Prefix:        netip.PrefixFrom(addr.ToAddr(), bits),
		Level:         netaddr6.AggLevel(d.Varint()),
		EstimatedDsts: d.Uvarint(),
		Packets:       d.Uvarint(),
		First:         d.Time(),
		Last:          d.Time(),
		Escalated:     d.U8() != 0,
	}
}
