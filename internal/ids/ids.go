// Package ids implements the operational recommendation of the paper's
// Discussion section: an inline intrusion-detection component that
// tracks scan candidates at several source-aggregation levels
// *simultaneously*, with bounded per-source memory, and recommends per
// scanning entity the most specific blocklist prefix that captures its
// activity.
//
// The paper shows that any fixed aggregation mask fails: too specific
// (/128) misses actors that spread sources across a prefix (AS #9,
// AS #18), too coarse (/32) merges distinct tenants of a cloud provider
// and causes collateral damage when blocklisting (AS #6). The engine
// here resolves this by:
//
//  1. maintaining per-level candidate tables keyed by aggregated source
//     prefix, using HyperLogLog destination sketches (constant memory
//     per candidate, unlike the exact sets of the offline detector);
//  2. alerting at the *most specific* level whose estimated destination
//     cardinality crosses the threshold;
//  3. suppressing redundant coarser alerts when a more specific prefix
//     already accounts for the bulk of the coarser aggregate's
//     destinations — and escalating to the coarser prefix when it does
//     not (the spread-source case).
//
// Engine is single-goroutine and allocation-light: candidate tables are
// u128idx.Index instances (open-addressed, pointer-free U128 keys, u32
// handles into paged candidate arrays), and candidates hold their first
// destination inline, materializing the sketch only on the second
// distinct destination — at fine aggregation levels the overwhelming
// majority of candidates are short-lived background sources that never
// need one. The inline-first-destination cutoff is 1 (a single address)
// because the sketch, unlike a set, has no cheap intermediate size: the
// first distinct second address pays the full 2^precision registers, so
// there is nothing to re-tune between 1 and materialization — the only
// knob is SketchPrecision. ProcessBatch additionally groups adjacent
// same-source records so a burst of N records to one candidate costs
// one index probe per level. ShardedEngine (sharded.go) runs N engines
// in parallel, partitioned by coarsest-level source prefix, with
// byte-identical merged output.
package ids

import (
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
	"v6scan/internal/u128idx"
)

// Config parameterizes the engine.
type Config struct {
	// MinDsts is the destination-cardinality alert threshold
	// (default 100, the paper's large-scale scan bar).
	MinDsts int
	// Timeout evicts idle candidates (default 1 hour, the scan
	// definition's inter-arrival bound).
	Timeout time.Duration
	// Levels are the aggregation levels tracked, most specific first
	// (default /128, /64, /48, /32). New accepts any order and does not
	// modify the slice.
	Levels []netaddr6.AggLevel
	// SketchPrecision sets HyperLogLog register count = 2^precision
	// per candidate (default 10 → 1 KiB, ≈3% error).
	SketchPrecision uint8
	// CoverageShare is the fraction of a coarser aggregate's
	// destinations a more specific alert must explain to suppress the
	// coarser alert (default 0.9).
	CoverageShare float64
	// MaxCandidates bounds each level's table; when full, new
	// candidates are dropped (deployments would shard or sample).
	// Default 1<<20.
	MaxCandidates int
}

// DefaultConfig returns production-oriented defaults.
func DefaultConfig() Config {
	return Config{
		MinDsts:         100,
		Timeout:         time.Hour,
		Levels:          []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32},
		SketchPrecision: 10,
		CoverageShare:   0.9,
		MaxCandidates:   1 << 20,
	}
}

// Alert is one detected scanning entity with a blocklist
// recommendation.
type Alert struct {
	// Prefix is the recommended blocklist entry: the most specific
	// aggregation that captures the entity's activity.
	Prefix netip.Prefix
	// Level is the aggregation level of Prefix.
	Level netaddr6.AggLevel
	// EstimatedDsts is the sketched destination cardinality.
	EstimatedDsts uint64
	// Packets counts packets attributed to the entity.
	Packets uint64
	// First and Last bound the observed activity.
	First, Last time.Time
	// Escalated reports that a coarser prefix was chosen because no
	// more specific candidate explained the activity (the AS #18
	// spread-source pattern).
	Escalated bool
}

// String renders a log line.
func (a Alert) String() string {
	esc := ""
	if a.Escalated {
		esc = " (escalated: spread-source entity)"
	}
	return fmt.Sprintf("scan from %v [%v]: ≈%d dsts, %d packets, %v–%v%s",
		a.Prefix, a.Level, a.EstimatedDsts, a.Packets,
		a.First.Format(time.RFC3339), a.Last.Format(time.RFC3339), esc)
}

// sortAlerts orders alerts by first activity, then address, then
// prefix length. The comparator is a total order (no two distinct
// alerts compare equal: a level appears at most once per prefix), so
// the result is deterministic regardless of accumulation order — the
// property ShardedEngine's merge relies on for byte-identical output.
func sortAlerts(alerts []Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		if !alerts[i].First.Equal(alerts[j].First) {
			return alerts[i].First.Before(alerts[j].First)
		}
		if c := alerts[i].Prefix.Addr().Compare(alerts[j].Prefix.Addr()); c != 0 {
			return c < 0
		}
		return alerts[i].Prefix.Bits() < alerts[j].Prefix.Bits()
	})
}

// candidate is the in-flight state for one aggregated source prefix.
// The sketch is materialized lazily: until a second distinct
// destination arrives, the single destination lives inline and the
// candidate costs no sketch memory. HyperLogLog insertion is
// idempotent per address, so the late-materialized sketch is
// byte-identical to one fed every record.
// Candidates live in paged per-level arrays addressed by u32 handles
// and are recycled through a free list on eviction (alloc/recycle
// below), with their sketches reset and pooled alongside: steady-state
// ingest otherwise allocates one candidate per source per level, which
// dominates the engine's allocation rate on million-record days.
type candidate struct {
	firstDst    netaddr6.U128
	sketch      *core.DstSketch
	packets     uint64
	first, last time.Time
}

// estimate returns the candidate's destination cardinality: exactly 1
// on the inline fast path, the sketch estimate otherwise.
func (c *candidate) estimate() uint64 {
	if c.sketch == nil {
		return 1
	}
	return c.sketch.Estimate()
}

// level is one aggregation level's candidate table: an open-addressed
// index keyed by the masked 128-bit source (the prefix length is the
// level itself) mapping to u32 handles into paged candidate arrays —
// pointer-free keys keep the garbage collector from tracing millions
// of interned netip.Addr zone pointers on every cycle, and pages never
// move once allocated, so *candidate pointers stay valid across alloc.
type level struct {
	agg netaddr6.AggLevel
	idx u128idx.Index
	// oldest is a conservative lower bound on every live candidate's
	// last-activity time (zero when unknown/empty). Candidate activity
	// only moves last forward, so the bound lets sweep skip the whole
	// level — exactly, not heuristically — when even the stalest
	// possible candidate would not be idle yet: the common case for
	// minute-cadence Ticks over an hour-scale timeout.
	oldest time.Time
	// pages, free, next and freeSketch implement the handle-addressed
	// candidate arena: handles are page<<candidatePageShift | offset,
	// evicted candidates return through free, and their sketches are
	// reset and pooled for the next candidate that needs one.
	pages      [][]candidate
	free       []uint32
	next       uint32
	freeSketch []*core.DstSketch
}

// candidatePageShift sets the page granularity, 512 candidates/page
// (see the detector's sessionPageShift for the trade-off).
const (
	candidatePageShift = 9
	candidatePageSize  = 1 << candidatePageShift
)

// candidate returns the candidate addressed by handle h.
func (lv *level) candidate(h uint32) *candidate {
	return &lv.pages[h>>candidatePageShift][h&(candidatePageSize-1)]
}

// alloc returns a zeroed candidate and its handle, from the free list
// or by carving the next page slot.
func (lv *level) alloc() (uint32, *candidate) {
	if n := len(lv.free) - 1; n >= 0 {
		h := lv.free[n]
		lv.free = lv.free[:n]
		return h, lv.candidate(h)
	}
	if int(lv.next) == len(lv.pages)<<candidatePageShift {
		lv.pages = append(lv.pages, make([]candidate, candidatePageSize))
	}
	h := lv.next
	lv.next++
	return h, lv.candidate(h)
}

// recycle resets an evicted candidate and returns its handle (and its
// sketch, reset) to the level's pools. Callers must be done reading it.
func (lv *level) recycle(h uint32, c *candidate) {
	if c.sketch != nil {
		c.sketch.Reset()
		lv.freeSketch = append(lv.freeSketch, c.sketch)
	}
	*c = candidate{}
	lv.free = append(lv.free, h)
}

// observeDst records one destination for a candidate, materializing
// the sketch (pooled when available) on the second distinct address.
// HyperLogLog insertion is idempotent per address, so the
// late-materialized sketch is byte-identical to one fed every record.
func (lv *level) observeDst(c *candidate, d netaddr6.U128, precision uint8) {
	if c.sketch == nil {
		if d == c.firstDst {
			return
		}
		if n := len(lv.freeSketch) - 1; n >= 0 {
			c.sketch = lv.freeSketch[n]
			lv.freeSketch = lv.freeSketch[:n]
		} else {
			c.sketch = core.NewDstSketch(precision)
		}
		c.sketch.AddU128(c.firstDst)
	}
	c.sketch.AddU128(d)
}

// Engine is the dynamic-aggregation IDS.
type Engine struct {
	cfg    Config
	levels []*level // most specific first, ordered once at New
	now    time.Time

	// alerts accumulated since the last Drain.
	alerts []Alert
	// dropped counts candidates rejected by MaxCandidates. Atomic so
	// observability surfaces (the metrics registry, a serving daemon's
	// state endpoint) can read it from any goroutine while the engine
	// processes on its own — the only engine field with that property.
	dropped atomic.Uint64

	// scrDst is the per-run destination scratch for ProcessBatch; one
	// backs the Process single-record wrapper.
	scrDst []netaddr6.U128
	one    [1]firewall.Record
}

// New returns an engine.
func New(cfg Config) *Engine {
	def := DefaultConfig()
	if cfg.MinDsts <= 0 {
		cfg.MinDsts = def.MinDsts
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = def.Timeout
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = def.Levels
	}
	if cfg.SketchPrecision == 0 {
		cfg.SketchPrecision = def.SketchPrecision
	}
	if cfg.CoverageShare <= 0 || cfg.CoverageShare > 1 {
		cfg.CoverageShare = def.CoverageShare
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	// Order levels most specific first, once: alerting prefers
	// specificity and sweep relies on this ordering every call. Sort a
	// copy — callers' Levels slices are not modified.
	levels := append([]netaddr6.AggLevel(nil), cfg.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i] > levels[j] })
	cfg.Levels = levels
	e := &Engine{cfg: cfg}
	for _, l := range levels {
		e.levels = append(e.levels, &level{agg: l})
	}
	return e
}

// Config returns the engine's normalized configuration (defaults
// applied, levels ordered most specific first).
func (e *Engine) Config() Config { return e.cfg }

// Process ingests one record, updating every level's candidate.
func (e *Engine) Process(r firewall.Record) {
	e.one[0] = r
	e.ProcessBatch(e.one[:])
}

// ProcessBatch ingests a run of records. The slice is not retained, so
// callers may reuse the backing array between calls.
//
// Adjacent records with the same source (the shape dispatch staging
// and real scan bursts produce) are grouped into runs, so N records to
// one candidate cost one index probe per aggregation level instead of
// N map lookups.
func (e *Engine) ProcessBatch(recs []firewall.Record) {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Src == recs[i].Src {
			j++
		}
		e.ingestRun(recs[i:j])
		i = j
	}
}

// ingestRun applies one same-source run: a single index probe per
// level resolves (or, below the MaxCandidates bound, creates in the
// same probe) the candidate, and each record then updates it through
// the cached pointer. No index mutation happens inside a run, so the
// value pointer from the initial probe stays valid throughout.
func (e *Engine) ingestRun(rs []firewall.Record) {
	e.scrDst = e.scrDst[:0]
	for _, r := range rs {
		if r.Time.After(e.now) {
			e.now = r.Time
		}
		e.scrDst = append(e.scrDst, netaddr6.ToU128(r.Dst))
	}
	src := netaddr6.ToU128(rs[0].Src)
	for _, lv := range e.levels {
		key := src.Mask(int(lv.agg))
		var c *candidate
		if lv.idx.Len() < e.cfg.MaxCandidates {
			// Below the bound, lookup and admission are one probe.
			vp, existed := lv.idx.RefH(u128idx.Hash(key), key)
			if existed {
				c = lv.candidate(*vp)
			} else {
				var h uint32
				h, c = lv.alloc()
				*vp = h
				c.firstDst, c.first = e.scrDst[0], rs[0].Time
				lv.observe(c, rs[0])
				if len(rs) == 1 {
					continue
				}
				rs := rs[1:]
				for k, r := range rs {
					lv.observeDst(c, e.scrDst[k+1], e.cfg.SketchPrecision)
					lv.observe(c, r)
				}
				continue
			}
		} else {
			// At the bound only existing candidates admit records; a
			// missing key drops every record of the run, as the
			// per-record path did.
			h, ok := lv.idx.GetH(u128idx.Hash(key), key)
			if !ok {
				e.dropped.Add(uint64(len(rs)))
				continue
			}
			c = lv.candidate(h)
		}
		for k, r := range rs {
			lv.observeDst(c, e.scrDst[k], e.cfg.SketchPrecision)
			lv.observe(c, r)
		}
	}
}

// observe applies one record's bookkeeping to a resolved candidate.
func (lv *level) observe(c *candidate, r firewall.Record) {
	c.packets++
	c.last = r.Time
	if lv.oldest.IsZero() || r.Time.Before(lv.oldest) {
		lv.oldest = r.Time
	}
}

// Tick advances time, evicting idle candidates and emitting alerts for
// entities whose activity ended. Call periodically (e.g. once per
// minute of stream time); Flush emits everything at shutdown.
func (e *Engine) Tick(now time.Time) {
	if now.After(e.now) {
		e.now = now
	}
	e.sweep(false)
}

// Flush evicts every candidate regardless of idleness and returns all
// pending alerts.
func (e *Engine) Flush() []Alert {
	e.sweep(true)
	return e.Drain()
}

// Drain returns and clears pending alerts, ordered deterministically
// (first activity, then address, then prefix length).
func (e *Engine) Drain() []Alert {
	out := e.alerts
	e.alerts = nil
	sortAlerts(out)
	return out
}

// Candidates returns the current working-set size at a level.
func (e *Engine) Candidates(l netaddr6.AggLevel) int {
	for _, lv := range e.levels {
		if lv.agg == l {
			return lv.idx.Len()
		}
	}
	return 0
}

// MemoryBytes estimates sketch memory across all levels — the quantity
// an IDS deployment budgets. Candidates on the inline single-dst fast
// path cost no sketch memory.
func (e *Engine) MemoryBytes() int {
	total := 0
	for _, lv := range e.levels {
		lv.idx.Range(func(_ netaddr6.U128, h uint32) bool {
			if c := lv.candidate(h); c.sketch != nil {
				total += c.sketch.MemoryBytes()
			}
			return true
		})
	}
	return total
}

// sweep evicts (idle or all) candidates level by level, most specific
// first, applying the suppression/escalation logic. The level order
// was fixed at New; within a level, closed candidates are visited in
// address order for determinism.
func (e *Engine) sweep(all bool) {
	type closedScan struct {
		key netaddr6.U128
		h   uint32
	}
	var (
		closed  []closedScan // reused per level
		emitted []Alert
	)
	for _, lv := range e.levels {
		if lv.idx.Len() == 0 {
			continue
		}
		if !all && e.now.Sub(lv.oldest) <= e.cfg.Timeout {
			// Even the stalest candidate is within the timeout: no
			// eviction possible at this level, skip the table scan.
			continue
		}
		closed = closed[:0]
		var oldest time.Time
		lv.idx.Range(func(key netaddr6.U128, h uint32) bool {
			c := lv.candidate(h)
			if !all && e.now.Sub(c.last) <= e.cfg.Timeout {
				if oldest.IsZero() || c.last.Before(oldest) {
					oldest = c.last
				}
				return true
			}
			lv.idx.Delete(key)
			if c.estimate() >= uint64(e.cfg.MinDsts) {
				closed = append(closed, closedScan{key: key, h: h})
			} else {
				lv.recycle(h, c)
			}
			return true
		})
		// Tighten the bound to the surviving minimum (zero when the
		// level emptied).
		lv.oldest = oldest
		if len(closed) == 0 {
			continue
		}
		sort.Slice(closed, func(i, j int) bool { return closed[i].key.Cmp(closed[j].key) < 0 })
		// Suppression: a coarser candidate is redundant if
		// already-emitted more specific alerts cover CoverageShare of
		// its destinations (approximated by cardinality sums — sketches
		// cannot intersect, and scan destination sets at different
		// levels of one entity nest).
		for _, cs := range closed {
			c := lv.candidate(cs.h)
			prefix := netip.PrefixFrom(cs.key.ToAddr(), int(lv.agg))
			var coveredDsts uint64
			for _, a := range emitted {
				if netaddr6.PrefixContains(prefix, a.Prefix) {
					coveredDsts += a.EstimatedDsts
				}
			}
			est := c.estimate()
			if float64(coveredDsts) >= e.cfg.CoverageShare*float64(est) {
				continue // explained by finer alerts
			}
			emitted = append(emitted, Alert{
				Prefix:        prefix,
				Level:         lv.agg,
				EstimatedDsts: est,
				Packets:       c.packets,
				First:         c.first,
				Last:          c.last,
				Escalated:     coveredDsts > 0 || lv.agg != e.levels[0].agg,
			})
		}
		// Alerts hold copies of everything they need; the closed
		// candidates (and their sketches) can re-enter the arena.
		for _, cs := range closed {
			lv.recycle(cs.h, lv.candidate(cs.h))
		}
	}
	e.alerts = append(e.alerts, emitted...)
}

// DroppedCandidates reports how many candidates were rejected by the
// MaxCandidates bound. Unlike every other accessor it is safe from
// any goroutine: the counter is atomic, so metrics scrapes read it
// without synchronizing with the processing goroutine.
func (e *Engine) DroppedCandidates() uint64 { return e.dropped.Load() }
