// Package ids implements the operational recommendation of the paper's
// Discussion section: an inline intrusion-detection component that
// tracks scan candidates at several source-aggregation levels
// *simultaneously*, with bounded per-source memory, and recommends per
// scanning entity the most specific blocklist prefix that captures its
// activity.
//
// The paper shows that any fixed aggregation mask fails: too specific
// (/128) misses actors that spread sources across a prefix (AS #9,
// AS #18), too coarse (/32) merges distinct tenants of a cloud provider
// and causes collateral damage when blocklisting (AS #6). The engine
// here resolves this by:
//
//  1. maintaining per-level candidate tables keyed by aggregated source
//     prefix, using HyperLogLog destination sketches (constant memory
//     per candidate, unlike the exact sets of the offline detector);
//  2. alerting at the *most specific* level whose estimated destination
//     cardinality crosses the threshold;
//  3. suppressing redundant coarser alerts when a more specific prefix
//     already accounts for the bulk of the coarser aggregate's
//     destinations — and escalating to the coarser prefix when it does
//     not (the spread-source case).
//
// The engine is deliberately single-goroutine (callers shard by flow
// hash, the gopacket FastHash idiom) and allocation-light.
package ids

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// Config parameterizes the engine.
type Config struct {
	// MinDsts is the destination-cardinality alert threshold
	// (default 100, the paper's large-scale scan bar).
	MinDsts int
	// Timeout evicts idle candidates (default 1 hour, the scan
	// definition's inter-arrival bound).
	Timeout time.Duration
	// Levels are the aggregation levels tracked, most specific first
	// (default /128, /64, /48, /32).
	Levels []netaddr6.AggLevel
	// SketchPrecision sets HyperLogLog register count = 2^precision
	// per candidate (default 10 → 1 KiB, ≈3% error).
	SketchPrecision uint8
	// CoverageShare is the fraction of a coarser aggregate's
	// destinations a more specific alert must explain to suppress the
	// coarser alert (default 0.9).
	CoverageShare float64
	// MaxCandidates bounds each level's table; when full, new
	// candidates are dropped (deployments would shard or sample).
	// Default 1<<20.
	MaxCandidates int
}

// DefaultConfig returns production-oriented defaults.
func DefaultConfig() Config {
	return Config{
		MinDsts:         100,
		Timeout:         time.Hour,
		Levels:          []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32},
		SketchPrecision: 10,
		CoverageShare:   0.9,
		MaxCandidates:   1 << 20,
	}
}

// Alert is one detected scanning entity with a blocklist
// recommendation.
type Alert struct {
	// Prefix is the recommended blocklist entry: the most specific
	// aggregation that captures the entity's activity.
	Prefix netip.Prefix
	// Level is the aggregation level of Prefix.
	Level netaddr6.AggLevel
	// EstimatedDsts is the sketched destination cardinality.
	EstimatedDsts uint64
	// Packets counts packets attributed to the entity.
	Packets uint64
	// First and Last bound the observed activity.
	First, Last time.Time
	// Escalated reports that a coarser prefix was chosen because no
	// more specific candidate explained the activity (the AS #18
	// spread-source pattern).
	Escalated bool
}

// String renders a log line.
func (a Alert) String() string {
	esc := ""
	if a.Escalated {
		esc = " (escalated: spread-source entity)"
	}
	return fmt.Sprintf("scan from %v [%v]: ≈%d dsts, %d packets, %v–%v%s",
		a.Prefix, a.Level, a.EstimatedDsts, a.Packets,
		a.First.Format(time.RFC3339), a.Last.Format(time.RFC3339), esc)
}

type candidate struct {
	sketch      *core.DstSketch
	packets     uint64
	first, last time.Time
	alerted     bool
}

type level struct {
	agg        netaddr6.AggLevel
	candidates map[netip.Prefix]*candidate
}

// Engine is the dynamic-aggregation IDS.
type Engine struct {
	cfg    Config
	levels []*level // most specific first
	now    time.Time

	// alerts accumulated since the last Drain.
	alerts []Alert
	// dropped counts candidates rejected by MaxCandidates.
	dropped uint64
}

// New returns an engine.
func New(cfg Config) *Engine {
	def := DefaultConfig()
	if cfg.MinDsts <= 0 {
		cfg.MinDsts = def.MinDsts
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = def.Timeout
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = def.Levels
	}
	if cfg.SketchPrecision == 0 {
		cfg.SketchPrecision = def.SketchPrecision
	}
	if cfg.CoverageShare <= 0 || cfg.CoverageShare > 1 {
		cfg.CoverageShare = def.CoverageShare
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	// Sort levels most specific first: alerting prefers specificity.
	sort.Slice(cfg.Levels, func(i, j int) bool { return cfg.Levels[i] > cfg.Levels[j] })
	e := &Engine{cfg: cfg}
	for _, l := range cfg.Levels {
		e.levels = append(e.levels, &level{agg: l, candidates: make(map[netip.Prefix]*candidate)})
	}
	return e
}

// Process ingests one record, updating every level's candidate.
func (e *Engine) Process(r firewall.Record) {
	if r.Time.After(e.now) {
		e.now = r.Time
	}
	for _, lv := range e.levels {
		key := netaddr6.Aggregate(r.Src, lv.agg)
		c := lv.candidates[key]
		if c == nil {
			if len(lv.candidates) >= e.cfg.MaxCandidates {
				e.dropped++
				continue
			}
			c = &candidate{sketch: core.NewDstSketch(e.cfg.SketchPrecision), first: r.Time}
			lv.candidates[key] = c
		}
		c.sketch.Add(r.Dst)
		c.packets++
		c.last = r.Time
	}
}

// Tick advances time, evicting idle candidates and emitting alerts for
// entities whose activity ended. Call periodically (e.g. once per
// minute of stream time); Flush emits everything at shutdown.
func (e *Engine) Tick(now time.Time) {
	if now.After(e.now) {
		e.now = now
	}
	e.sweep(false)
}

// Flush evicts every candidate regardless of idleness and returns all
// pending alerts.
func (e *Engine) Flush() []Alert {
	e.sweep(true)
	return e.Drain()
}

// Drain returns and clears pending alerts.
func (e *Engine) Drain() []Alert {
	out := e.alerts
	e.alerts = nil
	sort.Slice(out, func(i, j int) bool {
		if !out[i].First.Equal(out[j].First) {
			return out[i].First.Before(out[j].First)
		}
		return out[i].Prefix.Addr().Compare(out[j].Prefix.Addr()) < 0
	})
	return out
}

// Candidates returns the current working-set size at a level.
func (e *Engine) Candidates(l netaddr6.AggLevel) int {
	for _, lv := range e.levels {
		if lv.agg == l {
			return len(lv.candidates)
		}
	}
	return 0
}

// MemoryBytes estimates sketch memory across all levels — the quantity
// an IDS deployment budgets.
func (e *Engine) MemoryBytes() int {
	total := 0
	for _, lv := range e.levels {
		for _, c := range lv.candidates {
			total += c.sketch.MemoryBytes()
		}
	}
	return total
}

// sweep evicts (idle or all) candidates level by level, most specific
// first, applying the suppression/escalation logic.
func (e *Engine) sweep(all bool) {
	type closedScan struct {
		prefix netip.Prefix
		level  netaddr6.AggLevel
		c      *candidate
	}
	// Collect qualifying closed candidates per level, most specific
	// level first.
	var closed []closedScan
	for _, lv := range e.levels {
		for key, c := range lv.candidates {
			if !all && e.now.Sub(c.last) <= e.cfg.Timeout {
				continue
			}
			delete(lv.candidates, key)
			if c.sketch.Estimate() >= uint64(e.cfg.MinDsts) {
				closed = append(closed, closedScan{prefix: key, level: lv.agg, c: c})
			}
		}
	}
	if len(closed) == 0 {
		return
	}
	// Most specific first, then by address for determinism.
	sort.Slice(closed, func(i, j int) bool {
		if closed[i].level != closed[j].level {
			return closed[i].level > closed[j].level
		}
		return closed[i].prefix.Addr().Compare(closed[j].prefix.Addr()) < 0
	})
	// Suppression: a coarser candidate is redundant if already-emitted
	// more specific alerts cover CoverageShare of its destinations
	// (approximated by cardinality sums — sketches cannot intersect,
	// and scan destination sets at different levels of one entity
	// nest).
	emitted := make([]Alert, 0, len(closed))
	for _, cs := range closed {
		var coveredDsts uint64
		for _, a := range emitted {
			if netaddr6.PrefixContains(cs.prefix, a.Prefix) {
				coveredDsts += a.EstimatedDsts
			}
		}
		est := cs.c.sketch.Estimate()
		if float64(coveredDsts) >= e.cfg.CoverageShare*float64(est) {
			continue // explained by finer alerts
		}
		emitted = append(emitted, Alert{
			Prefix:        cs.prefix,
			Level:         cs.level,
			EstimatedDsts: est,
			Packets:       cs.c.packets,
			First:         cs.c.first,
			Last:          cs.c.last,
			Escalated:     coveredDsts > 0 || cs.level != e.levels[0].agg,
		})
	}
	e.alerts = append(e.alerts, emitted...)
}

// DroppedCandidates reports how many candidates were rejected by the
// MaxCandidates bound.
func (e *Engine) DroppedCandidates() uint64 { return e.dropped }
