// Package ids implements the operational recommendation of the paper's
// Discussion section: an inline intrusion-detection component that
// tracks scan candidates at several source-aggregation levels
// *simultaneously*, with bounded per-source memory, and recommends per
// scanning entity the most specific blocklist prefix that captures its
// activity.
//
// The paper shows that any fixed aggregation mask fails: too specific
// (/128) misses actors that spread sources across a prefix (AS #9,
// AS #18), too coarse (/32) merges distinct tenants of a cloud provider
// and causes collateral damage when blocklisting (AS #6). The engine
// here resolves this by:
//
//  1. maintaining per-level candidate tables keyed by aggregated source
//     prefix, using HyperLogLog destination sketches (constant memory
//     per candidate, unlike the exact sets of the offline detector);
//  2. alerting at the *most specific* level whose estimated destination
//     cardinality crosses the threshold;
//  3. suppressing redundant coarser alerts when a more specific prefix
//     already accounts for the bulk of the coarser aggregate's
//     destinations — and escalating to the coarser prefix when it does
//     not (the spread-source case).
//
// Engine is single-goroutine and allocation-light: candidate tables use
// pointer-free U128 keys, and candidates hold their first destination
// inline, materializing the sketch only on the second distinct
// destination — at fine aggregation levels the overwhelming majority of
// candidates are short-lived background sources that never need one.
// ShardedEngine (sharded.go) runs N engines in parallel, partitioned by
// coarsest-level source prefix, with byte-identical merged output.
package ids

import (
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// Config parameterizes the engine.
type Config struct {
	// MinDsts is the destination-cardinality alert threshold
	// (default 100, the paper's large-scale scan bar).
	MinDsts int
	// Timeout evicts idle candidates (default 1 hour, the scan
	// definition's inter-arrival bound).
	Timeout time.Duration
	// Levels are the aggregation levels tracked, most specific first
	// (default /128, /64, /48, /32). New accepts any order and does not
	// modify the slice.
	Levels []netaddr6.AggLevel
	// SketchPrecision sets HyperLogLog register count = 2^precision
	// per candidate (default 10 → 1 KiB, ≈3% error).
	SketchPrecision uint8
	// CoverageShare is the fraction of a coarser aggregate's
	// destinations a more specific alert must explain to suppress the
	// coarser alert (default 0.9).
	CoverageShare float64
	// MaxCandidates bounds each level's table; when full, new
	// candidates are dropped (deployments would shard or sample).
	// Default 1<<20.
	MaxCandidates int
}

// DefaultConfig returns production-oriented defaults.
func DefaultConfig() Config {
	return Config{
		MinDsts:         100,
		Timeout:         time.Hour,
		Levels:          []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32},
		SketchPrecision: 10,
		CoverageShare:   0.9,
		MaxCandidates:   1 << 20,
	}
}

// Alert is one detected scanning entity with a blocklist
// recommendation.
type Alert struct {
	// Prefix is the recommended blocklist entry: the most specific
	// aggregation that captures the entity's activity.
	Prefix netip.Prefix
	// Level is the aggregation level of Prefix.
	Level netaddr6.AggLevel
	// EstimatedDsts is the sketched destination cardinality.
	EstimatedDsts uint64
	// Packets counts packets attributed to the entity.
	Packets uint64
	// First and Last bound the observed activity.
	First, Last time.Time
	// Escalated reports that a coarser prefix was chosen because no
	// more specific candidate explained the activity (the AS #18
	// spread-source pattern).
	Escalated bool
}

// String renders a log line.
func (a Alert) String() string {
	esc := ""
	if a.Escalated {
		esc = " (escalated: spread-source entity)"
	}
	return fmt.Sprintf("scan from %v [%v]: ≈%d dsts, %d packets, %v–%v%s",
		a.Prefix, a.Level, a.EstimatedDsts, a.Packets,
		a.First.Format(time.RFC3339), a.Last.Format(time.RFC3339), esc)
}

// sortAlerts orders alerts by first activity, then address, then
// prefix length. The comparator is a total order (no two distinct
// alerts compare equal: a level appears at most once per prefix), so
// the result is deterministic regardless of accumulation order — the
// property ShardedEngine's merge relies on for byte-identical output.
func sortAlerts(alerts []Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		if !alerts[i].First.Equal(alerts[j].First) {
			return alerts[i].First.Before(alerts[j].First)
		}
		if c := alerts[i].Prefix.Addr().Compare(alerts[j].Prefix.Addr()); c != 0 {
			return c < 0
		}
		return alerts[i].Prefix.Bits() < alerts[j].Prefix.Bits()
	})
}

// candidate is the in-flight state for one aggregated source prefix.
// The sketch is materialized lazily: until a second distinct
// destination arrives, the single destination lives inline and the
// candidate costs no sketch memory. HyperLogLog insertion is
// idempotent per address, so the late-materialized sketch is
// byte-identical to one fed every record.
// Candidates are slab-allocated per level and recycled through a free
// list on eviction (newCandidate/recycle below), with their sketches
// reset and pooled alongside: steady-state ingest otherwise allocates
// one candidate per source per level, which dominates the engine's
// allocation rate on million-record days.
type candidate struct {
	firstDst    netaddr6.U128
	sketch      *core.DstSketch
	packets     uint64
	first, last time.Time
}

// estimate returns the candidate's destination cardinality: exactly 1
// on the inline fast path, the sketch estimate otherwise.
func (c *candidate) estimate() uint64 {
	if c.sketch == nil {
		return 1
	}
	return c.sketch.Estimate()
}

// level is one aggregation level's candidate table, keyed by the
// masked 128-bit source (the prefix length is the level itself) —
// pointer-free keys keep the garbage collector from tracing millions
// of interned netip.Addr zone pointers on every cycle.
type level struct {
	agg        netaddr6.AggLevel
	candidates map[netaddr6.U128]*candidate
	// oldest is a conservative lower bound on every live candidate's
	// last-activity time (zero when unknown/empty). Candidate activity
	// only moves last forward, so the bound lets sweep skip the whole
	// level — exactly, not heuristically — when even the stalest
	// possible candidate would not be idle yet: the common case for
	// minute-cadence Ticks over an hour-scale timeout.
	oldest time.Time
	// slab, free and freeSketch implement the per-level candidate
	// arena: new candidates are carved from slab chunks, evicted ones
	// return through free, and their sketches are reset and pooled for
	// the next candidate that needs one.
	slab       []candidate
	free       []*candidate
	freeSketch []*core.DstSketch
}

// candidateSlabSize is the slab chunk granularity (see the detector's
// sessionSlabSize for the trade-off).
const candidateSlabSize = 512

// newCandidate returns a zeroed candidate from the free list or slab.
func (lv *level) newCandidate() *candidate {
	if n := len(lv.free) - 1; n >= 0 {
		c := lv.free[n]
		lv.free = lv.free[:n]
		return c
	}
	if len(lv.slab) == 0 {
		lv.slab = make([]candidate, candidateSlabSize)
	}
	c := &lv.slab[0]
	lv.slab = lv.slab[1:]
	return c
}

// recycle resets an evicted candidate and returns it (and its sketch,
// reset) to the level's pools. Callers must be done reading it.
func (lv *level) recycle(c *candidate) {
	if c.sketch != nil {
		c.sketch.Reset()
		lv.freeSketch = append(lv.freeSketch, c.sketch)
	}
	*c = candidate{}
	lv.free = append(lv.free, c)
}

// observeDst records one destination for a candidate, materializing
// the sketch (pooled when available) on the second distinct address.
// HyperLogLog insertion is idempotent per address, so the
// late-materialized sketch is byte-identical to one fed every record.
func (lv *level) observeDst(c *candidate, d netaddr6.U128, precision uint8) {
	if c.sketch == nil {
		if d == c.firstDst {
			return
		}
		if n := len(lv.freeSketch) - 1; n >= 0 {
			c.sketch = lv.freeSketch[n]
			lv.freeSketch = lv.freeSketch[:n]
		} else {
			c.sketch = core.NewDstSketch(precision)
		}
		c.sketch.AddU128(c.firstDst)
	}
	c.sketch.AddU128(d)
}

// Engine is the dynamic-aggregation IDS.
type Engine struct {
	cfg    Config
	levels []*level // most specific first, ordered once at New
	now    time.Time

	// alerts accumulated since the last Drain.
	alerts []Alert
	// dropped counts candidates rejected by MaxCandidates. Atomic so
	// observability surfaces (the metrics registry, a serving daemon's
	// state endpoint) can read it from any goroutine while the engine
	// processes on its own — the only engine field with that property.
	dropped atomic.Uint64
}

// New returns an engine.
func New(cfg Config) *Engine {
	def := DefaultConfig()
	if cfg.MinDsts <= 0 {
		cfg.MinDsts = def.MinDsts
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = def.Timeout
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = def.Levels
	}
	if cfg.SketchPrecision == 0 {
		cfg.SketchPrecision = def.SketchPrecision
	}
	if cfg.CoverageShare <= 0 || cfg.CoverageShare > 1 {
		cfg.CoverageShare = def.CoverageShare
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	// Order levels most specific first, once: alerting prefers
	// specificity and sweep relies on this ordering every call. Sort a
	// copy — callers' Levels slices are not modified.
	levels := append([]netaddr6.AggLevel(nil), cfg.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i] > levels[j] })
	cfg.Levels = levels
	e := &Engine{cfg: cfg}
	for _, l := range levels {
		e.levels = append(e.levels, &level{agg: l, candidates: make(map[netaddr6.U128]*candidate)})
	}
	return e
}

// Config returns the engine's normalized configuration (defaults
// applied, levels ordered most specific first).
func (e *Engine) Config() Config { return e.cfg }

// Process ingests one record, updating every level's candidate.
func (e *Engine) Process(r firewall.Record) {
	if r.Time.After(e.now) {
		e.now = r.Time
	}
	src, dst := netaddr6.ToU128(r.Src), netaddr6.ToU128(r.Dst)
	for _, lv := range e.levels {
		key := src.Mask(int(lv.agg))
		c := lv.candidates[key]
		if c == nil {
			if len(lv.candidates) >= e.cfg.MaxCandidates {
				e.dropped.Add(1)
				continue
			}
			c = lv.newCandidate()
			c.firstDst, c.first = dst, r.Time
			lv.candidates[key] = c
		} else {
			lv.observeDst(c, dst, e.cfg.SketchPrecision)
		}
		c.packets++
		c.last = r.Time
		if lv.oldest.IsZero() || r.Time.Before(lv.oldest) {
			lv.oldest = r.Time
		}
	}
}

// ProcessBatch ingests a run of records. The slice is not retained, so
// callers may reuse the backing array between calls.
func (e *Engine) ProcessBatch(recs []firewall.Record) {
	for _, r := range recs {
		e.Process(r)
	}
}

// Tick advances time, evicting idle candidates and emitting alerts for
// entities whose activity ended. Call periodically (e.g. once per
// minute of stream time); Flush emits everything at shutdown.
func (e *Engine) Tick(now time.Time) {
	if now.After(e.now) {
		e.now = now
	}
	e.sweep(false)
}

// Flush evicts every candidate regardless of idleness and returns all
// pending alerts.
func (e *Engine) Flush() []Alert {
	e.sweep(true)
	return e.Drain()
}

// Drain returns and clears pending alerts, ordered deterministically
// (first activity, then address, then prefix length).
func (e *Engine) Drain() []Alert {
	out := e.alerts
	e.alerts = nil
	sortAlerts(out)
	return out
}

// Candidates returns the current working-set size at a level.
func (e *Engine) Candidates(l netaddr6.AggLevel) int {
	for _, lv := range e.levels {
		if lv.agg == l {
			return len(lv.candidates)
		}
	}
	return 0
}

// MemoryBytes estimates sketch memory across all levels — the quantity
// an IDS deployment budgets. Candidates on the inline single-dst fast
// path cost no sketch memory.
func (e *Engine) MemoryBytes() int {
	total := 0
	for _, lv := range e.levels {
		for _, c := range lv.candidates {
			if c.sketch != nil {
				total += c.sketch.MemoryBytes()
			}
		}
	}
	return total
}

// sweep evicts (idle or all) candidates level by level, most specific
// first, applying the suppression/escalation logic. The level order
// was fixed at New; within a level, closed candidates are visited in
// address order for determinism.
func (e *Engine) sweep(all bool) {
	type closedScan struct {
		key netaddr6.U128
		c   *candidate
	}
	var (
		closed  []closedScan // reused per level
		emitted []Alert
	)
	for _, lv := range e.levels {
		if len(lv.candidates) == 0 {
			continue
		}
		if !all && e.now.Sub(lv.oldest) <= e.cfg.Timeout {
			// Even the stalest candidate is within the timeout: no
			// eviction possible at this level, skip the table scan.
			continue
		}
		closed = closed[:0]
		var oldest time.Time
		for key, c := range lv.candidates {
			if !all && e.now.Sub(c.last) <= e.cfg.Timeout {
				if oldest.IsZero() || c.last.Before(oldest) {
					oldest = c.last
				}
				continue
			}
			delete(lv.candidates, key)
			if c.estimate() >= uint64(e.cfg.MinDsts) {
				closed = append(closed, closedScan{key: key, c: c})
			} else {
				lv.recycle(c)
			}
		}
		// Tighten the bound to the surviving minimum (zero when the
		// level emptied).
		lv.oldest = oldest
		if len(closed) == 0 {
			continue
		}
		sort.Slice(closed, func(i, j int) bool { return closed[i].key.Cmp(closed[j].key) < 0 })
		// Suppression: a coarser candidate is redundant if
		// already-emitted more specific alerts cover CoverageShare of
		// its destinations (approximated by cardinality sums — sketches
		// cannot intersect, and scan destination sets at different
		// levels of one entity nest).
		for _, cs := range closed {
			prefix := netip.PrefixFrom(cs.key.ToAddr(), int(lv.agg))
			var coveredDsts uint64
			for _, a := range emitted {
				if netaddr6.PrefixContains(prefix, a.Prefix) {
					coveredDsts += a.EstimatedDsts
				}
			}
			est := cs.c.estimate()
			if float64(coveredDsts) >= e.cfg.CoverageShare*float64(est) {
				continue // explained by finer alerts
			}
			emitted = append(emitted, Alert{
				Prefix:        prefix,
				Level:         lv.agg,
				EstimatedDsts: est,
				Packets:       cs.c.packets,
				First:         cs.c.first,
				Last:          cs.c.last,
				Escalated:     coveredDsts > 0 || lv.agg != e.levels[0].agg,
			})
		}
		// Alerts hold copies of everything they need; the closed
		// candidates (and their sketches) can re-enter the arena.
		for _, cs := range closed {
			lv.recycle(cs.c)
		}
	}
	e.alerts = append(e.alerts, emitted...)
}

// DroppedCandidates reports how many candidates were rejected by the
// MaxCandidates bound. Unlike every other accessor it is safe from
// any goroutine: the counter is atomic, so metrics scrapes read it
// without synchronizing with the processing goroutine.
func (e *Engine) DroppedCandidates() uint64 { return e.dropped.Load() }
