// Package artifacts models the non-scan background traffic the CDN
// telescope logs alongside real scans: misconfigured eyeball clients
// whose repeated failing connection attempts mimic scanning by touching
// telescope addresses day after day. Appendix A.1 identifies the two
// dominant artifact families — SMTP servers falling back to AAAA
// records (TCP/25) and IPsec peers re-sending ISAKMP handshakes
// (UDP/500) — and removes them with the 5-duplicate pre-filter before
// scan detection. This package generates that population so the filter
// has something realistic to remove, plus a low-rate benign population
// that survives filtering without ever qualifying as a scan.
package artifacts

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"v6scan/internal/asdb"
	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
	"v6scan/internal/telescope"
)

// EyeballSpace is the address space artifact clients live in — eyeball
// ISP allocations, disjoint from both the telescope's deployment space
// and the scan-actor space so the detection tests can assert that no
// artifact source ever surfaces as a scan.
var EyeballSpace = netaddr6.MustPrefix("2600::/12")

// ASNBase numbers the eyeball ISP ASes registered by New. The range
// sits between the telescope deployment ASNs (64512+) and the scan
// actor ASNs (65000+).
const ASNBase = 64900

// Config sizes the artifact population.
type Config struct {
	// SMTPClients is the number of mail servers retrying delivery to
	// AAAA records of CDN machines (TCP/25, the top filtered service).
	SMTPClients int
	// IPsecClients is the number of peers re-sending ISAKMP handshakes
	// (UDP/500, the second filtered service). Every third one also
	// retries NAT-T on UDP/4500.
	IPsecClients int
	// BenignClients is the number of low-rate sources whose traffic
	// passes the 5-duplicate filter (too few packets per destination)
	// yet never reaches the scan threshold.
	BenignClients int
	// SMTPRetries and IPsecRetries are packets per client per day,
	// concentrated on the client's fixed targets so the k-duplicate
	// share is far above the filter's 30% bar.
	SMTPRetries  int
	IPsecRetries int
	// ASes is the number of eyeball ISP ASes the clients spread over.
	ASes int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a population large enough that artifact traffic
// visibly dominates the filter's drop statistics at simulation scale.
func DefaultConfig() Config {
	return Config{
		SMTPClients:   100,
		IPsecClients:  70,
		BenignClients: 50,
		SMTPRetries:   36,
		IPsecRetries:  30,
		ASes:          12,
		Seed:          5,
	}
}

// client is one artifact source: a fixed /64 with a fixed target set.
type client struct {
	src  netip.Addr
	dsts []netip.Addr
	svcs []firewall.Service // cycled per burst; len 1 for pure clients
	// perDay packets are spread over a short window starting at offset
	// into the day.
	perDay int
	offset time.Duration
	space  time.Duration
	length uint16
	// benign clients spread packets across dsts so no (dst, service)
	// pair exceeds the duplicate threshold.
	benign bool
}

// Generator emits the artifact population's records day by day.
type Generator struct {
	cfg     Config
	clients []client
}

// New builds the population against a telescope, registering the
// eyeball ASes and allocations in db (pass nil to skip registration).
func New(cfg Config, tele *telescope.Telescope, db *asdb.DB) *Generator {
	def := DefaultConfig()
	if cfg.SMTPRetries <= 0 {
		cfg.SMTPRetries = def.SMTPRetries
	}
	if cfg.IPsecRetries <= 0 {
		cfg.IPsecRetries = def.IPsecRetries
	}
	if cfg.ASes <= 0 {
		cfg.ASes = def.ASes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	allocs := make([]netip.Prefix, cfg.ASes)
	for i := range allocs {
		allocs[i] = netaddr6.NthSubprefix(EyeballSpace, 32, uint64(i))
		if db != nil {
			asn := ASNBase + i
			db.AddAS(asdb.AS{
				Number:  asn,
				Name:    fmt.Sprintf("eyeball-isp-%d", i),
				Type:    asdb.TypeISP,
				Country: eyeballCountry(i),
			})
			if err := db.Allocate(allocs[i], asn, asdb.KindRIRAllocation); err != nil {
				panic("artifacts: eyeball allocation: " + err.Error())
			}
		}
	}

	exposed := tele.ExposedAddrs()
	g := &Generator{cfg: cfg}
	// Each client occupies its own /64 (the filter's aggregation unit)
	// carved from its AS's /32, with a stable pseudo-random IID.
	srcFor := func(i int) netip.Addr {
		alloc := allocs[i%len(allocs)]
		p48 := netaddr6.NthSubprefix(alloc, 48, uint64(i/len(allocs)))
		p64 := netaddr6.NthSubprefix(p48, 64, uint64(i%7))
		return netaddr6.WithIID(p64.Addr(), 1+rng.Uint64()%0xFFFF)
	}
	pick := func(n int) []netip.Addr {
		out := make([]netip.Addr, 0, n)
		for len(out) < n && len(exposed) > 0 {
			out = append(out, exposed[rng.Intn(len(exposed))])
		}
		return out
	}

	id := 0
	for i := 0; i < cfg.SMTPClients; i++ {
		g.clients = append(g.clients, client{
			src: srcFor(id), dsts: pick(2),
			svcs:   []firewall.Service{{Proto: layers.ProtoTCP, Port: 25}},
			perDay: cfg.SMTPRetries, offset: clientOffset(id), space: 50 * time.Second,
			length: 80,
		})
		id++
	}
	for i := 0; i < cfg.IPsecClients; i++ {
		svcs := []firewall.Service{{Proto: layers.ProtoUDP, Port: 500}}
		if i%3 == 2 {
			svcs = append(svcs, firewall.Service{Proto: layers.ProtoUDP, Port: 4500})
		}
		g.clients = append(g.clients, client{
			src: srcFor(id), dsts: pick(1),
			svcs:   svcs,
			perDay: cfg.IPsecRetries, offset: clientOffset(id), space: 40 * time.Second,
			length: 120,
		})
		id++
	}
	benignSvcs := []firewall.Service{
		{Proto: layers.ProtoTCP, Port: 993},
		{Proto: layers.ProtoUDP, Port: 123},
		{Proto: layers.ProtoTCP, Port: 5222},
	}
	for i := 0; i < cfg.BenignClients; i++ {
		g.clients = append(g.clients, client{
			src: srcFor(id), dsts: pick(3),
			svcs:   []firewall.Service{benignSvcs[i%len(benignSvcs)]},
			perDay: 9, offset: clientOffset(id), space: 5 * time.Minute,
			length: 90, benign: true,
		})
		id++
	}
	return g
}

// clientOffset staggers client schedules across the first 20 hours of
// the day so artifact traffic interleaves with scan traffic without any
// client's burst crossing midnight.
func clientOffset(i int) time.Duration {
	return time.Duration((i*97)%(20*60)) * time.Minute
}

func eyeballCountry(i int) string {
	countries := []string{"US", "DE", "BR", "JP", "FR", "IN", "GB", "PL"}
	return countries[i%len(countries)]
}

// NumClients returns the total client population.
func (g *Generator) NumClients() int { return len(g.clients) }

// EmitDay generates every client's records for one UTC day. Like
// scanner.Census.EmitDay, output is per-client chronological but not
// globally sorted; callers sort the day before feeding detectors.
func (g *Generator) EmitDay(day time.Time, emit func(r firewall.Record)) {
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ day.Unix()))
	for _, c := range g.clients {
		if len(c.dsts) == 0 || c.perDay <= 0 {
			continue
		}
		ts := day.Add(c.offset + time.Duration(rng.Intn(60))*time.Second)
		for i := 0; i < c.perDay; i++ {
			var dst netip.Addr
			if c.benign {
				// Spread across targets: ≤ perDay/len(dsts) packets per
				// (dst, service) pair, under the duplicate threshold.
				dst = c.dsts[i%len(c.dsts)]
			} else {
				// Concentrate retries: the day's packets split into one
				// run per target, so every (dst, service) pair collects
				// far more than the duplicate threshold.
				dst = c.dsts[i*len(c.dsts)/c.perDay]
			}
			svc := c.svcs[i%len(c.svcs)]
			emit(firewall.Record{
				Time:    ts,
				Src:     c.src,
				Dst:     dst,
				Proto:   svc.Proto,
				SrcPort: uint16(30000 + rng.Intn(20000)),
				DstPort: svc.Port,
				Length:  c.length,
			})
			ts = ts.Add(c.space + time.Duration(rng.Intn(1000))*time.Millisecond)
		}
	}
}
