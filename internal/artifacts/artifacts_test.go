package artifacts

import (
	"testing"
	"time"

	"v6scan/internal/asdb"
	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
	"v6scan/internal/telescope"
)

func testTelescope(t *testing.T, db *asdb.DB) *telescope.Telescope {
	t.Helper()
	cfg := telescope.DefaultConfig()
	cfg.Machines = 300
	cfg.ASes = 5
	tele, err := telescope.New(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	return tele
}

func emitDay(g *Generator, day time.Time) []firewall.Record {
	var recs []firewall.Record
	g.EmitDay(day, func(r firewall.Record) { recs = append(recs, r) })
	return recs
}

func TestDeterministicEmission(t *testing.T) {
	tele := testTelescope(t, asdb.New())
	day := time.Date(2021, 3, 5, 0, 0, 0, 0, time.UTC)
	a := emitDay(New(DefaultConfig(), tele, nil), day)
	b := emitDay(New(DefaultConfig(), tele, nil), day)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("record counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSourcesInEyeballSpaceAndAttributable(t *testing.T) {
	db := asdb.New()
	tele := testTelescope(t, db)
	g := New(DefaultConfig(), tele, db)
	day := time.Date(2021, 3, 5, 0, 0, 0, 0, time.UTC)
	for _, r := range emitDay(g, day) {
		if !EyeballSpace.Contains(r.Src) {
			t.Fatalf("source %v outside EyeballSpace", r.Src)
		}
		as, _, ok := db.Attribute(r.Src)
		if !ok {
			t.Fatalf("source %v not attributable", r.Src)
		}
		if as.Type != asdb.TypeISP {
			t.Errorf("eyeball AS type %v, want ISP", as.Type)
		}
		if day.After(r.Time) || !r.Time.Before(day.Add(24*time.Hour)) {
			t.Fatalf("record at %v outside day %v", r.Time, day)
		}
	}
}

func TestArtifactClientsTripTheFilter(t *testing.T) {
	tele := testTelescope(t, nil)
	cfg := DefaultConfig()
	g := New(cfg, tele, nil)
	day := time.Date(2021, 3, 5, 0, 0, 0, 0, time.UTC)
	recs := emitDay(g, day)

	f := firewall.NewArtifactFilter()
	for _, r := range recs {
		f.Push(r)
	}
	out := f.Close()
	st := f.Stats()

	// Every SMTP and IPsec client's /64 must be dropped; the benign
	// population must survive.
	if want := uint64(cfg.SMTPClients + cfg.IPsecClients); st.SourcesDropped != want {
		t.Errorf("sources dropped = %d, want %d", st.SourcesDropped, want)
	}
	if len(out) == 0 {
		t.Error("benign clients did not survive the filter")
	}
	for _, r := range out {
		if svc := r.Service(); svc == (firewall.Service{Proto: layers.ProtoTCP, Port: 25}) ||
			svc == (firewall.Service{Proto: layers.ProtoUDP, Port: 500}) {
			t.Fatalf("artifact record survived: %+v", r)
		}
	}

	// Appendix A.1 shape: TCP/25 and UDP/500 lead the drop statistics.
	top := st.TopFilteredServices(2)
	if len(top) != 2 {
		t.Fatalf("top services: %+v", top)
	}
	names := map[string]bool{top[0].Service.String(): true, top[1].Service.String(): true}
	if !names["TCP/25"] || !names["UDP/500"] {
		t.Errorf("top filtered services %v, want TCP/25 and UDP/500", names)
	}
}

func TestCollectPolicyAdmitsArtifacts(t *testing.T) {
	// Artifact traffic must pass the CDN collection policy — the paper
	// filters it with the duplicate rule, not the policy.
	tele := testTelescope(t, nil)
	g := New(DefaultConfig(), tele, nil)
	policy := firewall.DefaultCollectPolicy()
	day := time.Date(2021, 3, 5, 0, 0, 0, 0, time.UTC)
	for _, r := range emitDay(g, day) {
		if !policy.Admit(r) {
			t.Fatalf("policy rejected artifact record %+v", r)
		}
	}
}

func TestSpacesDisjoint(t *testing.T) {
	for _, p := range []struct {
		name string
		pfx  string
	}{
		{"telescope", "2a00::/12"},
		{"scan actors", "2c00::/12"},
	} {
		other := netaddr6.MustPrefix(p.pfx)
		if EyeballSpace.Overlaps(other) {
			t.Errorf("EyeballSpace overlaps %s space %v", p.name, other)
		}
	}
}
