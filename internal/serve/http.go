package serve

// The daemon's HTTP surface. Every handler is read-only against
// published snapshots — none touches the engine or the pipeline.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP API:
//
//	GET /healthz            liveness + generation
//	GET /api/state          the full State snapshot
//	GET /api/sessions       IDS working-set detail per aggregation level
//	GET /api/alerts         published alerts, paginated (?offset=seq&limit=n)
//	GET /api/alerts/stream  Server-Sent Events alert feed (?from=seq)
//	GET /metrics            Prometheus text exposition
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /api/state", d.handleState)
	mux.HandleFunc("GET /api/sessions", d.handleSessions)
	mux.HandleFunc("GET /api/alerts", d.handleAlerts)
	mux.HandleFunc("GET /api/alerts/stream", d.handleAlertStream)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s := d.State()
	writeJSON(w, map[string]any{
		"status":     "ok",
		"running":    s.Running,
		"generation": s.Generation,
		"updated_at": s.UpdatedAt,
	})
}

func (d *Daemon) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, d.State())
}

// sessionLevel is one row of /api/sessions: the working set at one
// aggregation level.
type sessionLevel struct {
	Level      string `json:"level"`
	Candidates int    `json:"candidates"`
}

func (d *Daemon) handleSessions(w http.ResponseWriter, r *http.Request) {
	s := d.State()
	levels := make([]sessionLevel, 0, len(d.levels))
	for _, l := range d.levels {
		levels = append(levels, sessionLevel{Level: l.String(), Candidates: s.Candidates[l.String()]})
	}
	writeJSON(w, map[string]any{
		"as_of":             s.LastTick,
		"levels":            levels,
		"dropped":           s.DroppedCandidates,
		"dropped_per_shard": s.DroppedPerShard,
		"memory_bytes":      s.MemoryBytes,
	})
}

// alertsPage is the /api/alerts response: total is the count of alerts
// ever published (the sequence space), first the oldest sequence the
// bounded backlog still holds.
type alertsPage struct {
	Total  uint64     `json:"total"`
	First  uint64     `json:"first"`
	Alerts []SeqAlert `json:"alerts"`
}

func (d *Daemon) handleAlerts(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, err := queryUint(q.Get("offset"), 0)
	if err != nil {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	limit, err := queryUint(q.Get("limit"), 100)
	if err != nil || limit > 10000 {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return
	}
	alerts, total, first := d.hub.page(offset, int(limit))
	if alerts == nil {
		alerts = []SeqAlert{}
	}
	writeJSON(w, alertsPage{Total: total, First: first, Alerts: alerts})
}

// handleAlertStream serves the SSE feed: the ?from= backlog first,
// then live alerts as ticks fire. Each event is
//
//	id: <seq>
//	event: alert
//	data: <SeqAlert JSON>
//
// A slow client's buffer overflowing drops alerts for that client
// only (counted in v6scand_sse_dropped_total); the pipeline never
// blocks on a reader.
func (d *Daemon) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	from, err := queryUint(r.URL.Query().Get("from"), 0)
	if err != nil {
		http.Error(w, "bad from", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "retry: 2000\n\n")
	fl.Flush()

	sub, backlog := d.hub.subscribe(from)
	defer d.hub.unsubscribe(sub)
	for _, sa := range backlog {
		if writeSSE(w, sa) != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case sa := <-sub.ch:
			if writeSSE(w, sa) != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, sa SeqAlert) error {
	b, err := json.Marshal(sa)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: alert\ndata: %s\n\n", sa.Seq, b)
	return err
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.reg.WritePrometheus(w)
}

// queryUint parses an optional non-negative integer query parameter.
func queryUint(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 63)
}
