package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/pipeline"
)

var testBase = time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)

// scanBurst is n records from one source to n distinct destinations,
// one per second starting at testBase+off — a scanner the IDS alerts
// on once the candidate idles past the timeout.
func scanBurst(src string, off time.Duration, n int) []firewall.Record {
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, firewall.Record{
			Time: testBase.Add(off + time.Duration(i)*time.Second),
			Src:  netip.MustParseAddr(src),
			Dst:  netip.MustParseAddr(fmt.Sprintf("2001:db8:ffff::%x", i+1)),
		})
	}
	return recs
}

// fillers is one benign record per minute from minute from to minute
// to (exclusive) — distinct single-destination sources that advance
// stream time (arming and firing ticks) without ever alerting.
func fillers(from, to int) []firewall.Record {
	var recs []firewall.Record
	for m := from; m < to; m++ {
		recs = append(recs, firewall.Record{
			Time: testBase.Add(time.Duration(m) * time.Minute),
			Src:  netip.MustParseAddr(fmt.Sprintf("2001:db8:aaaa::%x", m+1)),
			Dst:  netip.MustParseAddr("2001:db8:ffff::1"),
		})
	}
	return recs
}

// appendLog appends encoded records to path, flushing both buffer
// layers so every record is durable when the call returns.
func appendLog(t *testing.T, path string, recs []firewall.Record) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	w := firewall.NewWriter(bw)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// testIDS is a small-threshold config so 20-destination bursts alert.
func testIDS() ids.Config {
	return ids.Config{MinDsts: 5, Timeout: 10 * time.Minute}
}

// daemonRun drives a Daemon in a goroutine, with helpers to wait for
// ingest progress and to stop it cleanly.
type daemonRun struct {
	d      *Daemon
	cancel context.CancelFunc
	done   chan error
}

func startDaemon(t *testing.T, cfg Config) *daemonRun {
	t.Helper()
	if cfg.Poll == 0 {
		cfg.Poll = 2 * time.Millisecond
	}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dr := &daemonRun{d: d, cancel: cancel, done: make(chan error, 1)}
	go func() { dr.done <- d.Run(ctx) }()
	return dr
}

// waitRecords blocks until the pipeline's source has emitted n records
// (raw tail output, before any filter).
func (dr *daemonRun) waitRecords(t *testing.T, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for dr.d.pm.SourceRecords.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d records, have %d",
				n, dr.d.pm.SourceRecords.Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitAlerts blocks until n alerts have been published.
func (dr *daemonRun) waitAlerts(t *testing.T, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, total, _ := dr.d.hub.page(0, 0)
		if total >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d alerts, have %d", n, total)
		}
		time.Sleep(time.Millisecond)
	}
}

// stop cancels the run context (the in-process SIGTERM) and waits for
// the clean drain + final checkpoint.
func (dr *daemonRun) stop(t *testing.T) {
	t.Helper()
	dr.cancel()
	select {
	case err := <-dr.done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop")
	}
}

// alerts returns every published alert in order.
func (dr *daemonRun) alerts() []SeqAlert {
	out, _, _ := dr.d.hub.page(0, 0)
	return out
}

// alertsJSON renders alerts for content comparison (time and prefix
// representations normalize through the wire shape).
func alertsJSON(t *testing.T, alerts []SeqAlert) string {
	t.Helper()
	var b strings.Builder
	for _, sa := range alerts {
		j, err := json.Marshal(SeqAlert{Alert: sa.Alert}) // drop seq: runs renumber
		if err != nil {
			t.Fatal(err)
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestHubBackpressure: a slow subscriber loses alerts (counted), the
// hub and other subscribers are unaffected, and the ring stays
// bounded with pagination reporting the trimmed window.
func TestHubBackpressure(t *testing.T) {
	h := newHub(8, 2)
	slow, _ := h.subscribe(0)
	alerts := make([]ids.Alert, 20)
	for i := range alerts {
		alerts[i] = ids.Alert{Prefix: netip.MustParsePrefix("2001:db8::/48")}
	}
	h.publish(alerts)
	if len(slow.ch) != 2 {
		t.Fatalf("slow client buffered %d, want 2", len(slow.ch))
	}
	if _, dropped := h.stats(); dropped != 18 {
		t.Fatalf("dropped = %d, want 18", dropped)
	}
	page, total, first := h.page(0, 0)
	if total != 20 || first != 12 || len(page) != 8 {
		t.Fatalf("page = (%d alerts, total %d, first %d), want (8, 20, 12)", len(page), total, first)
	}
	if page[0].Seq != 12 || page[7].Seq != 19 {
		t.Fatalf("ring window [%d,%d], want [12,19]", page[0].Seq, page[7].Seq)
	}
	// Late subscriber with from: only the retained suffix arrives.
	_, backlog := h.subscribe(15)
	if len(backlog) != 5 || backlog[0].Seq != 15 {
		t.Fatalf("backlog from 15: %d entries starting %d", len(backlog), backlog[0].Seq)
	}
	h.unsubscribe(slow)
	if n, _ := h.stats(); n != 1 {
		t.Fatalf("subscribers = %d after unsubscribe, want 1", n)
	}
}

// TestBlocklistExport: alerts fold into a deduplicated, sorted,
// atomically rewritten rule file.
func TestBlocklistExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "block.rules")
	b := newBlocklist(path)
	mk := func(p string) ids.Alert { return ids.Alert{Prefix: netip.MustParsePrefix(p)} }
	if !b.add([]ids.Alert{mk("2001:db8:2::/48"), mk("2001:db8:1::/48")}) {
		t.Fatal("add reported no growth")
	}
	if err := b.write(); err != nil {
		t.Fatal(err)
	}
	if b.add([]ids.Alert{mk("2001:db8:1::/48")}) {
		t.Fatal("duplicate grew the set")
	}
	b.add([]ids.Alert{mk("2001:db8:1::/64")})
	if err := b.write(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "2001:db8:1::/48\n2001:db8:1::/64\n2001:db8:2::/48\n"
	if string(got) != want {
		t.Fatalf("blocklist = %q, want %q", got, want)
	}
}

// TestDaemonEndToEnd: the acceptance scenario — records appended to a
// live log are observed through /api/state, an alert reaches both the
// SSE stream and /api/alerts, /metrics exposes the serving families,
// and cancellation cuts a final checkpoint.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "fw.log")
	ckpt := filepath.Join(dir, "ckpt")
	block := filepath.Join(dir, "block.rules")

	dr := startDaemon(t, Config{
		LogPath:         log,
		Shards:          4,
		IDS:             testIDS(),
		AdvanceEvery:    time.Minute,
		CheckpointEvery: 5 * time.Minute,
		CheckpointDir:   ckpt,
		BlocklistPath:   block,
	})
	srv := httptest.NewServer(dr.d.Handler())
	defer srv.Close()

	// Subscribe to the SSE stream before any alert exists.
	sse, err := http.Get(srv.URL + "/api/alerts/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	events := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(sse.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				events <- data
			}
		}
	}()

	// A scan burst appears in the live log and is observed via state.
	burst := scanBurst("2001:db8:bad::1", 0, 20)
	appendLog(t, log, burst)
	dr.waitRecords(t, 20)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st State
		resp, err := http.Get(srv.URL + "/api/state")
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.Records >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state.Records = %d, want ≥ 20", st.Records)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stream time advances past the timeout: the eviction tick alerts.
	appendLog(t, log, fillers(1, 15))
	dr.waitAlerts(t, 1)

	select {
	case data := <-events:
		if !strings.Contains(data, "2001:db8:bad::") {
			t.Fatalf("SSE alert %q does not name the scanner", data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no SSE alert arrived")
	}

	// The alert pages out of /api/alerts too.
	resp, err := http.Get(srv.URL + "/api/alerts?offset=0&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var page alertsPage
	json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if page.Total < 1 || len(page.Alerts) < 1 {
		t.Fatalf("alerts page = %+v, want ≥ 1 alert", page)
	}

	// /metrics carries both pipeline and daemon families.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	resp.Body.Close()
	for _, want := range []string{
		"v6scan_pipeline_records_total",
		"v6scan_pipeline_advances_total",
		"v6scand_alerts_total",
		"v6scand_ids_candidates{level=\"/48\"}",
		"v6scand_sse_clients 1",
		"v6scand_shard_queue_depth",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The blocklist export names the scanner.
	rules, err := os.ReadFile(block)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rules), "2001:db8:bad::") {
		t.Fatalf("blocklist %q does not name the scanner", rules)
	}

	// SIGTERM path: clean stop cuts a final checkpoint with sidecar.
	dr.stop(t)
	latest, err := pipeline.LatestCheckpoint(ckpt)
	if err != nil || latest == "" {
		t.Fatalf("no final checkpoint (err %v)", err)
	}
	if _, ok := readMarks(latest + ".marks"); !ok {
		t.Fatalf("final checkpoint %s has no marks sidecar", latest)
	}
	if st := dr.d.State(); st.Running {
		t.Fatal("state still Running after stop")
	}
}

// TestDaemonReload: SIGHUP restarts the generation, carrying engine
// state across in memory — candidates survive and alert after the
// reload, and the generation counter advances.
func TestDaemonReload(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "fw.log")
	dr := startDaemon(t, Config{
		LogPath:      log,
		IDS:          testIDS(),
		AdvanceEvery: time.Minute,
	})
	appendLog(t, log, scanBurst("2001:db8:bad::1", 0, 20))
	dr.waitRecords(t, 20)

	dr.d.Reload()
	deadline := time.Now().Add(10 * time.Second)
	for dr.d.State().Generation < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("generation = %d, want 2", dr.d.State().Generation)
		}
		time.Sleep(time.Millisecond)
	}

	// The reloaded generation still holds the scanner candidate: the
	// time jump must alert without re-reading the burst (which the
	// resume horizon skips).
	appendLog(t, log, fillers(1, 15))
	dr.waitAlerts(t, 1)
	if got := dr.alerts(); !strings.Contains(alertsJSON(t, got), "2001:db8:bad::") {
		t.Fatalf("post-reload alerts %s do not name the scanner", alertsJSON(t, got))
	}
	dr.stop(t)
}
