package serve

// Alert fan-out: a bounded ring of published alerts (the pagination
// backlog behind /api/alerts) plus live SSE subscribers with bounded
// per-client buffers. Slow clients never block the pipeline: when a
// subscriber's buffer is full the alert is dropped for that client
// and counted, which is the whole backpressure policy (see the
// pipeline package doc, "Serving").

import (
	"encoding/json"
	"sync"
	"time"

	"v6scan/internal/ids"
)

// SeqAlert is one published alert with its daemon-lifetime sequence
// number. Sequence numbers start at 0 and never repeat, so a client
// that reconnects with ?from=<last seen+1> resumes without loss as
// long as the backlog still covers that point.
type SeqAlert struct {
	Seq   uint64
	Alert ids.Alert
}

// MarshalJSON renders the API wire shape: flat snake_case fields with
// the prefix and level as strings, stable across internal refactors
// of ids.Alert.
func (sa SeqAlert) MarshalJSON() ([]byte, error) {
	a := sa.Alert
	return json.Marshal(struct {
		Seq           uint64    `json:"seq"`
		Prefix        string    `json:"prefix"`
		Level         string    `json:"level"`
		EstimatedDsts uint64    `json:"estimated_dsts"`
		Packets       uint64    `json:"packets"`
		First         time.Time `json:"first"`
		Last          time.Time `json:"last"`
		Escalated     bool      `json:"escalated,omitempty"`
	}{sa.Seq, a.Prefix.String(), a.Level.String(), a.EstimatedDsts,
		a.Packets, a.First, a.Last, a.Escalated})
}

// subscriber is one live SSE client.
type subscriber struct {
	ch      chan SeqAlert
	dropped uint64 // alerts this client missed; guarded by hub.mu
}

// hub owns the alert ring and the subscriber set. All fields are
// guarded by mu; publish runs on the pipeline's dispatching goroutine,
// subscribe/unsubscribe and the read accessors run on HTTP handler
// goroutines.
type hub struct {
	mu       sync.Mutex
	ring     []SeqAlert // ring[i].Seq == firstSeq+i, len ≤ capHint
	firstSeq uint64
	nextSeq  uint64 // == total alerts ever published
	subs     map[*subscriber]struct{}
	dropped  uint64 // total alerts dropped across all slow clients
	capHint  int    // ring bound
	bufHint  int    // per-subscriber channel buffer
}

func newHub(backlog, buffer int) *hub {
	if backlog <= 0 {
		backlog = 4096
	}
	if buffer <= 0 {
		buffer = 64
	}
	return &hub{subs: make(map[*subscriber]struct{}), capHint: backlog, bufHint: buffer}
}

// publish assigns sequence numbers to a batch of alerts, appends them
// to the ring (evicting the oldest past the bound), and offers each to
// every subscriber without blocking.
func (h *hub) publish(alerts []ids.Alert) {
	if len(alerts) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, a := range alerts {
		sa := SeqAlert{Seq: h.nextSeq, Alert: a}
		h.nextSeq++
		h.ring = append(h.ring, sa)
		for s := range h.subs {
			select {
			case s.ch <- sa:
			default:
				s.dropped++
				h.dropped++
			}
		}
	}
	if over := len(h.ring) - h.capHint; over > 0 {
		h.ring = append(h.ring[:0], h.ring[over:]...)
		h.firstSeq += uint64(over)
	}
}

// subscribe registers a new client and returns the backlog of ring
// entries with Seq ≥ from. Backlog collection and registration happen
// under one lock acquisition, so the backlog plus the channel stream
// is gapless and duplicate-free.
func (h *hub) subscribe(from uint64) (*subscriber, []SeqAlert) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &subscriber{ch: make(chan SeqAlert, h.bufHint)}
	h.subs[s] = struct{}{}
	var backlog []SeqAlert
	for _, sa := range h.ring {
		if sa.Seq >= from {
			backlog = append(backlog, sa)
		}
	}
	return s, backlog
}

// unsubscribe removes a client; its channel is left to the garbage
// collector (publish never closes subscriber channels).
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, s)
}

// page returns up to limit ring entries starting at sequence offset,
// plus the total published and the oldest retained sequence — the
// /api/alerts pagination contract.
func (h *hub) page(offset uint64, limit int) (alerts []SeqAlert, total, first uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if offset < h.firstSeq {
		offset = h.firstSeq
	}
	if offset < h.nextSeq {
		i := int(offset - h.firstSeq)
		end := len(h.ring)
		if limit > 0 && i+limit < end {
			end = i + limit
		}
		alerts = append(alerts, h.ring[i:end]...)
	}
	return alerts, h.nextSeq, h.firstSeq
}

// stats reports the subscriber count and the cumulative slow-client
// drop total; safe from any goroutine (used by the metrics gauges).
func (h *hub) stats() (clients int, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs), h.dropped
}
