// Package serve is the long-running daemon runtime behind cmd/v6scand:
// it tails a growing binary firewall log through pipeline.TailSource,
// runs the dynamic-aggregation IDS continuously with the standard
// eviction and checkpoint cadences, and serves the results — an HTTP
// state API, a Server-Sent-Events alert stream, a Prometheus-text
// metrics endpoint, and an atomically rewritten CIDR blocklist file.
//
// # Lifecycle
//
// A Daemon runs in generations. Each generation opens the tail, builds
// a pipeline into the pump (the daemon's terminal sink, which owns the
// IDS engine), and streams until the run context is cancelled (SIGTERM
// path: drain what is durable, cut a final checkpoint, exit) or a
// Reload is requested (SIGHUP path: same drain and final cut, then a
// new generation resumes from the just-cut state in place — the log is
// reopened, so a renamed or replaced path is picked up, and an
// OnReload hook may revise the serving configuration).
//
// Crash recovery is the batch CLI's resume story: start the daemon
// with Config.Resume and it restores the latest checkpoint, replays
// the log with the already-processed prefix skipped, and continues.
// Alerts of the exact fire a periodic checkpoint was cut at are
// re-published on such a resume (at-least-once delivery; see pump.go).
//
// # Concurrency
//
// The pipeline's dispatching goroutine owns all detection state; HTTP
// handlers never touch the engine. They read an immutable State
// snapshot through an atomic pointer, page alerts out of the hub's
// mutex-guarded ring, and scrape metrics whose instruments are atomic.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"v6scan/internal/checkpoint"
	"v6scan/internal/ids"
	"v6scan/internal/metrics"
	"v6scan/internal/netaddr6"
	"v6scan/internal/pipeline"
)

// Config parameterizes a Daemon. The zero value is not runnable: at
// minimum LogPath must be set.
type Config struct {
	// LogPath is the binary firewall log to tail. The file may not
	// exist yet.
	LogPath string
	// Shards > 1 runs the sharded IDS engine; 0 or 1 the plain one.
	Shards int
	// IDS configures a fresh engine (ignored when state is restored
	// from a checkpoint: detection parameters travel in the snapshot).
	IDS ids.Config
	// AdvanceEvery is the stream-time tick cadence (default one
	// minute) — the daemon's alerting latency.
	AdvanceEvery time.Duration
	// CheckpointEvery / CheckpointDir enable periodic snapshots at
	// tick-aligned cuts. CheckpointDir alone still gets the final
	// shutdown snapshot.
	CheckpointEvery time.Duration
	CheckpointDir   string
	// Resume restores the latest checkpoint in CheckpointDir at
	// startup and skips the already-processed log prefix.
	Resume bool
	// Poll is the tail's growth-poll interval (default
	// pipeline.DefaultTailPoll).
	Poll time.Duration
	// ArtifactFilter applies the 5-duplicate artifact pre-filter.
	ArtifactFilter bool
	// BlocklistPath, when set, mirrors every alerted prefix into an
	// atomically rewritten one-CIDR-per-line rule file.
	BlocklistPath string
	// AlertBacklog bounds the paginable alert ring (default 4096);
	// SSEBuffer bounds each SSE client's buffer (default 64).
	AlertBacklog int
	SSEBuffer    int
	// Registry receives the daemon's instruments; a fresh registry is
	// created when nil. Pass a registry that does not already hold
	// v6scan_* families.
	Registry *metrics.Registry
	// OnReload, when set, is applied to the current config at each
	// Reload; the next generation serves with the result. Engine
	// parameters still come from the carried-over state.
	OnReload func(Config) Config
}

// State is the immutable serving snapshot behind /healthz, /api/state
// and /api/sessions. A new value is published on every batch (stream
// progress) and every tick fire (engine-derived fields); handlers
// only ever read whole snapshots.
type State struct {
	// Generation counts pipeline (re)starts: 1 on first run,
	// incremented by each reload.
	Generation int `json:"generation"`
	// Running is false once the final generation has flushed.
	Running bool `json:"running"`
	// StreamTime is the newest record timestamp consumed; Records the
	// total consumed across all generations.
	StreamTime time.Time `json:"stream_time"`
	Records    uint64    `json:"records"`
	// AlertsPublished counts alerts ever published (the SSE sequence
	// space).
	AlertsPublished uint64 `json:"alerts_published"`
	// Candidates is the IDS working set per aggregation level, as of
	// the last tick fire.
	Candidates map[string]int `json:"candidates"`
	// DroppedCandidates / DroppedPerShard report the MaxCandidates
	// admission drops (per-shard detail only on a sharded engine).
	DroppedCandidates uint64   `json:"dropped_candidates"`
	DroppedPerShard   []uint64 `json:"dropped_per_shard,omitempty"`
	// QueueDepth is the sharded dispatcher's buffered batch count.
	QueueDepth int `json:"queue_depth"`
	// MemoryBytes is the engine's sketch-memory estimate.
	MemoryBytes int `json:"memory_bytes"`
	// Tail is the follow-mode source's progress.
	Tail pipeline.TailStats `json:"tail"`
	// LastTick and LastCheckpoint are the most recent cadence marks.
	LastTick       time.Time `json:"last_tick"`
	LastCheckpoint time.Time `json:"last_checkpoint"`
	// UpdatedAt is the wall-clock publish instant.
	UpdatedAt time.Time `json:"updated_at"`
}

// Daemon is one serving process: a pipeline generation loop plus the
// read-side surfaces. Create with NewDaemon, drive with Run, expose
// with Handler.
type Daemon struct {
	cfg      Config
	reg      *metrics.Registry
	pm       *pipeline.Metrics
	sm       serveMetrics
	hub      *hub
	block    *blocklist
	state    atomic.Pointer[State]
	reloadCh chan struct{}
	levels   []netaddr6.AggLevel
}

// serveMetrics are the daemon-level instruments (the pipeline-level
// ones live in pipeline.Metrics).
type serveMetrics struct {
	alerts           *metrics.Counter
	candidates       map[netaddr6.AggLevel]*metrics.Gauge
	dropped          *metrics.Gauge
	droppedPerShard  []*metrics.Gauge
	queueDepth       *metrics.Gauge
	memoryBytes      *metrics.Gauge
	blocklistEntries *metrics.Gauge
	generation       *metrics.Gauge
}

// NewDaemon validates cfg and builds the serving surfaces. No
// goroutines start until Run.
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.LogPath == "" {
		return nil, errors.New("serve: Config.LogPath is required")
	}
	if cfg.AdvanceEvery <= 0 {
		cfg.AdvanceEvery = time.Minute
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, errors.New("serve: Resume requires CheckpointDir")
	}
	d := &Daemon{
		cfg:      cfg,
		hub:      newHub(cfg.AlertBacklog, cfg.SSEBuffer),
		reloadCh: make(chan struct{}, 1),
		levels:   ids.New(cfg.IDS).Config().Levels,
	}
	if cfg.BlocklistPath != "" {
		d.block = newBlocklist(cfg.BlocklistPath)
	}
	d.reg = cfg.Registry
	if d.reg == nil {
		d.reg = metrics.NewRegistry()
	}
	d.pm = pipeline.RegisterMetrics(d.reg)
	d.registerServeMetrics()
	d.state.Store(&State{Candidates: map[string]int{}, UpdatedAt: time.Now()})
	return d, nil
}

// registerServeMetrics declares the v6scand_* families.
func (d *Daemon) registerServeMetrics() {
	reg := d.reg
	d.sm.alerts = reg.Counter("v6scand_alerts_total",
		"IDS alerts published to the hub.", nil)
	d.sm.dropped = reg.Gauge("v6scand_ids_dropped_candidates",
		"Candidates rejected by the MaxCandidates bound (as of the last tick).", nil)
	d.sm.queueDepth = reg.Gauge("v6scand_shard_queue_depth",
		"Batches buffered in the shard dispatcher (as of the last tick).", nil)
	d.sm.memoryBytes = reg.Gauge("v6scand_ids_memory_bytes",
		"IDS sketch-memory estimate (as of the last tick).", nil)
	d.sm.generation = reg.Gauge("v6scand_generation",
		"Pipeline generation (increments on reload).", nil)
	d.sm.candidates = make(map[netaddr6.AggLevel]*metrics.Gauge, len(d.levels))
	for _, l := range d.levels {
		d.sm.candidates[l] = reg.Gauge("v6scand_ids_candidates",
			"IDS candidate working set per aggregation level (as of the last tick).",
			map[string]string{"level": l.String()})
	}
	for i := 0; i < d.shardCount(); i++ {
		d.sm.droppedPerShard = append(d.sm.droppedPerShard, reg.Gauge(
			"v6scand_ids_dropped_candidates_shard",
			"Per-shard MaxCandidates drops (as of the last tick).",
			map[string]string{"shard": fmt.Sprint(i)}))
	}
	if d.block != nil {
		d.sm.blocklistEntries = reg.Gauge("v6scand_blocklist_entries",
			"Distinct prefixes in the exported blocklist.", nil)
	}
	reg.GaugeFunc("v6scand_sse_clients",
		"Connected SSE alert-stream clients.", nil,
		func() float64 { n, _ := d.hub.stats(); return float64(n) })
	reg.GaugeFunc("v6scand_sse_dropped_total",
		"Alerts dropped across all slow SSE clients.", nil,
		func() float64 { _, n := d.hub.stats(); return float64(n) })
}

// shardCount normalizes Config.Shards.
func (d *Daemon) shardCount() int {
	if d.cfg.Shards > 1 {
		return d.cfg.Shards
	}
	return 1
}

// Registry returns the daemon's metrics registry (also served at
// /metrics).
func (d *Daemon) Registry() *metrics.Registry { return d.reg }

// State returns the latest published serving snapshot. Safe from any
// goroutine; the value is immutable.
func (d *Daemon) State() *State { return d.state.Load() }

// Reload requests a generation restart (the SIGHUP path): the current
// generation drains, snapshots, and a new one resumes from that
// snapshot in place. Coalesces when a reload is already pending.
func (d *Daemon) Reload() {
	select {
	case d.reloadCh <- struct{}{}:
	default:
	}
}

// Run drives the generation loop until ctx is cancelled (after a
// clean drain and final checkpoint) or a pipeline error. It blocks;
// start the HTTP server around it.
func (d *Daemon) Run(ctx context.Context) error {
	var carry *handoff
	for gen := 1; ; gen++ {
		d.sm.generation.Set(float64(gen))
		p, horizon, err := d.newPump(carry)
		if err != nil {
			return err
		}
		reloaded, err := d.runGeneration(ctx, gen, p, horizon)
		if err != nil {
			return err
		}
		if !reloaded {
			return nil
		}
		carry = &p.out
		if d.cfg.OnReload != nil {
			d.cfg = d.cfg.OnReload(d.cfg)
		}
	}
}

// runGeneration streams one pipeline until stop or reload; reports
// which ended it.
func (d *Daemon) runGeneration(ctx context.Context, gen int, p *pump, horizon time.Time) (reloaded bool, err error) {
	genCtx, genCancel := context.WithCancel(context.Background())
	defer genCancel()
	tail := pipeline.NewTailSource(d.cfg.LogPath, pipeline.TailConfig{
		Poll:    d.cfg.Poll,
		Context: genCtx,
	})
	p.tail = tail
	p.generationStart(gen)

	stop := make(chan struct{})
	defer close(stop)
	var sawReload atomic.Bool
	go func() {
		select {
		case <-ctx.Done():
		case <-d.reloadCh:
			sawReload.Store(true)
		case <-stop:
		}
		genCancel() // the tail drains what is durable, then ends cleanly
	}()

	b := pipeline.From(tail).Instrument(d.pm)
	if d.cfg.ArtifactFilter {
		b = b.Artifact()
	}
	if !horizon.IsZero() {
		b = b.ResumeFrom(horizon)
	}
	if err := b.RunInto(context.Background(), p); err != nil {
		return false, err
	}
	return sawReload.Load(), nil
}

// newPump builds a generation's terminal: engine state from the
// previous generation's handoff, else the latest disk checkpoint
// (Config.Resume), else fresh. horizon is the replay skip bound for
// restored state.
func (d *Daemon) newPump(carry *handoff) (*pump, time.Time, error) {
	p := &pump{
		d:            d,
		advanceEvery: d.cfg.AdvanceEvery,
		ckptEvery:    d.cfg.CheckpointEvery,
		ckptDir:      d.cfg.CheckpointDir,
	}
	switch {
	case carry != nil && carry.snapshot != nil:
		eng, mark, err := restoreEngine(bytes.NewReader(carry.snapshot), d.cfg.Shards)
		if err != nil {
			return nil, time.Time{}, fmt.Errorf("serve: reload handoff: %w", err)
		}
		p.eng = eng
		p.lastAdvance, p.lastCkpt = carry.marks.Advance, carry.marks.Checkpoint
		return p, mark.Add(-time.Nanosecond), nil
	case d.cfg.Resume:
		// Clear out temp files stranded by a crashed writer before
		// scanning the directory for the newest snapshot.
		if _, err := pipeline.SweepCheckpointTemps(d.cfg.CheckpointDir); err != nil {
			return nil, time.Time{}, err
		}
		path, err := pipeline.LatestCheckpoint(d.cfg.CheckpointDir)
		if err != nil {
			return nil, time.Time{}, err
		}
		if path != "" {
			f, err := os.Open(path)
			if err != nil {
				return nil, time.Time{}, err
			}
			eng, mark, err := restoreEngine(f, d.cfg.Shards)
			f.Close()
			if err != nil {
				return nil, time.Time{}, fmt.Errorf("serve: resuming %s: %w", path, err)
			}
			p.eng = eng
			// Fire-point cuts carry their phase in the mark itself; a
			// shutdown cut carries it in the sidecar.
			p.lastAdvance, p.lastCkpt = mark, mark
			if m, ok := readMarks(path + ".marks"); ok {
				p.lastAdvance, p.lastCkpt = m.Advance, m.Checkpoint
			}
			return p, mark.Add(-time.Nanosecond), nil
		}
	}
	if d.cfg.Shards > 1 {
		p.eng = ids.NewSharded(d.cfg.IDS, d.cfg.Shards)
	} else {
		p.eng = ids.New(d.cfg.IDS)
	}
	return p, time.Time{}, nil
}

// restoreEngine rebuilds an IDS engine (re-sharded per the daemon's
// config) from a snapshot stream and returns its cut mark. It reuses
// the pipeline's resume machinery so config normalization and
// re-sharding behave exactly as in the batch CLI.
func restoreEngine(r io.Reader, shards int) (engine, time.Time, error) {
	res, err := pipeline.Resume(r, shards)
	if err != nil {
		return nil, time.Time{}, err
	}
	if res.Kind != checkpoint.KindIDS {
		return nil, time.Time{}, fmt.Errorf("checkpoint holds a detector snapshot, not IDS state")
	}
	switch s := res.Sink.(type) {
	case *pipeline.IDSSink:
		return s.E, res.Mark, nil
	case *pipeline.ShardedIDSSink:
		return s.E, res.Mark, nil
	default:
		return nil, time.Time{}, fmt.Errorf("unexpected resumed sink %T", res.Sink)
	}
}

// generationStart publishes the restored-state view and drains any
// pending alerts the snapshot carried (non-empty only when resuming a
// checkpoint cut mid-fire — the at-least-once crash-recovery path).
func (p *pump) generationStart(gen int) {
	d := p.d
	cur := *d.state.Load()
	cur.Generation = gen
	cur.Running = true
	cur.UpdatedAt = time.Now()
	d.state.Store(&cur)
	if pending := p.eng.Drain(); len(pending) > 0 {
		d.publish(p, pending, p.lastAdvance)
	}
}

// publish is the tick-fire hook: hand alerts to the hub and the
// blocklist, refresh the engine-derived gauges and the full State.
// Runs on the dispatching goroutine only.
func (d *Daemon) publish(p *pump, alerts []ids.Alert, tick time.Time) {
	if len(alerts) > 0 {
		// Export before notifying: a consumer reacting to the SSE
		// event (a firewall reload hook, the smoke test) must find the
		// blocklist already rewritten.
		if d.block != nil && d.block.add(alerts) {
			if err := d.block.write(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			d.sm.blocklistEntries.Set(float64(len(d.block.set)))
		}
		d.hub.publish(alerts)
		d.sm.alerts.Add(len(alerts))
	}
	cur := *d.state.Load()
	cur.LastTick = tick
	cur.LastCheckpoint = p.lastCkpt
	cur.Candidates = make(map[string]int, len(d.levels))
	for _, l := range d.levels {
		n := p.eng.Candidates(l)
		cur.Candidates[l.String()] = n
		d.sm.candidates[l].Set(float64(n))
	}
	cur.DroppedCandidates = p.eng.DroppedCandidates()
	d.sm.dropped.Set(float64(cur.DroppedCandidates))
	cur.MemoryBytes = p.eng.MemoryBytes()
	d.sm.memoryBytes.Set(float64(cur.MemoryBytes))
	cur.DroppedPerShard, cur.QueueDepth = nil, 0
	if se, ok := p.eng.(shardedEngine); ok {
		cur.DroppedPerShard = se.DroppedPerShard()
		for i, v := range cur.DroppedPerShard {
			if i < len(d.sm.droppedPerShard) {
				d.sm.droppedPerShard[i].Set(float64(v))
			}
		}
		cur.QueueDepth = se.QueueDepth()
		d.sm.queueDepth.Set(float64(cur.QueueDepth))
	}
	d.finishState(&cur, p)
}

// publishLight refreshes only the stream-progress fields — cheap
// enough for every batch, so /api/state is current even between tick
// fires.
func (d *Daemon) publishLight(p *pump) {
	cur := *d.state.Load()
	d.finishState(&cur, p)
}

// publishFinal marks the daemon stopped (or the generation over).
func (d *Daemon) publishFinal(p *pump) {
	cur := *d.state.Load()
	cur.Running = false
	cur.LastCheckpoint = p.lastCkpt
	d.finishState(&cur, p)
}

// finishState stamps the shared trailer fields and stores the new
// snapshot.
func (d *Daemon) finishState(s *State, p *pump) {
	s.Records = d.pm.SourceRecords.Value()
	if p.lastSeen.After(s.StreamTime) {
		s.StreamTime = p.lastSeen
	}
	s.AlertsPublished = d.sm.alerts.Value()
	if p.tail != nil {
		s.Tail = p.tail.Stats()
	}
	s.UpdatedAt = time.Now()
	d.state.Store(s)
}
