package serve

// The pump is the daemon's terminal sink: it owns the IDS engine
// directly (instead of wrapping pipeline.IDSSink) because a serving
// process must act *between* a tick and the records that follow it —
// drain freshly fired alerts, publish them to the SSE hub and the
// blocklist, refresh the state snapshot — and a wrapped sink offers no
// hook at that point. The cadence arithmetic (dueAt) is a faithful
// copy of the pipeline's due(): the first record only arms the mark,
// and a fire happens at the first record at or past mark+every, so a
// daemon run ticks at exactly the stream positions a batch CLI over
// the same input would. That equivalence is what makes kill/resume
// parity byte-exact (TestKillResumeParity).
//
// Fire order at a cadence point t is Tick → checkpoint → drain:
// the snapshot is cut after eviction (the cut the resume machinery
// expects) but before the fired alerts are removed from the engine,
// so a crash-recovered daemon re-publishes the alerts of the fire it
// was cut at — at-least-once delivery, never silent loss.

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/netaddr6"
	"v6scan/internal/pipeline"
)

// engine is the slice of ids.Engine / ids.ShardedEngine the pump
// drives; both satisfy it, so a one-shard daemon skips the dispatcher
// entirely.
type engine interface {
	Process(r firewall.Record)
	ProcessBatch(recs []firewall.Record)
	Tick(now time.Time)
	Drain() []ids.Alert
	Flush() []ids.Alert
	Candidates(l netaddr6.AggLevel) int
	MemoryBytes() int
	DroppedCandidates() uint64
	Config() ids.Config
	Snapshot(w io.Writer, mark time.Time) error
}

// shardedEngine is the extra observability a sharded engine offers.
type shardedEngine interface {
	DroppedPerShard() []uint64
	QueueDepth() int
}

// marks is the cadence phase carried in a checkpoint's sidecar file
// (and across in-process reloads): the advance and checkpoint cadence
// marks at the instant the snapshot was cut. A final shutdown
// checkpoint is cut at lastSeen+1ns — not a cadence fire point — so
// restoring both marks to the snapshot mark (what pipeline.Resume
// does for fire-point cuts) would shift the resumed run's tick
// schedule; the sidecar preserves the true phase instead.
type marks struct {
	Advance    time.Time `json:"advance"`
	Checkpoint time.Time `json:"checkpoint"`
}

// handoff is a completed generation's state, passed to the next one:
// an in-memory snapshot (reload) with its cadence marks.
type handoff struct {
	snapshot []byte
	marks    marks
}

// pump consumes the tailed record stream. Single-goroutine, like
// every terminal sink: all fields are touched only by the pipeline's
// dispatching goroutine.
type pump struct {
	d    *Daemon
	eng  engine
	tail *pipeline.TailSource

	advanceEvery time.Duration
	ckptEvery    time.Duration
	ckptDir      string

	lastAdvance time.Time
	lastCkpt    time.Time
	lastSeen    time.Time
	lastPub     time.Time // wall clock of the last light State publish
	records     uint64
	flushed     bool

	// out is the generation's parting state, read by Daemon.Run after
	// the pipeline returns (same goroutine ordering: RunInto has
	// completed Flush before Run resumes).
	out handoff
}

// dueAt mirrors pipeline's due(): first record arms, then fire at the
// first record ≥ mark+every, advancing the mark to that record's time.
func dueAt(last *time.Time, every time.Duration, t time.Time) bool {
	if every <= 0 {
		return false
	}
	if last.IsZero() || t.Sub(*last) >= every {
		fire := !last.IsZero()
		*last = t
		return fire
	}
	return false
}

// Checkpoint implements pipeline.Checkpointer.
func (p *pump) Checkpoint(w io.Writer, mark time.Time) error {
	return p.eng.Snapshot(w, mark)
}

// ckptEnabled reports whether periodic and final checkpoints are on.
func (p *pump) ckptEnabled() bool { return p.ckptEvery > 0 && p.ckptDir != "" }

// writeCkpt cuts one snapshot at mark, instrumented through the
// pipeline metrics bundle so checkpoint age/duration/errors surface
// under the same families as in batch runs.
func (p *pump) writeCkpt(mark time.Time) error {
	start := time.Now()
	err := pipeline.WriteCheckpoint(p.ckptDir, p, mark)
	p.d.pm.ObserveCheckpoint(time.Since(start), err)
	if err == nil {
		p.lastCkpt = mark
	}
	return err
}

// fire runs one cadence point at stream time t: evict, maybe cut a
// snapshot, then drain and publish whatever the eviction alerted on.
func (p *pump) fire(t time.Time) error {
	p.eng.Tick(t)
	p.d.pm.ObserveAdvance(t)
	if p.ckptEnabled() && dueAt(&p.lastCkpt, p.ckptEvery, t) {
		if err := p.writeCkpt(t); err != nil {
			return err
		}
	}
	p.d.publish(p, p.eng.Drain(), t)
	return nil
}

// statePublishInterval throttles the stream-progress State refresh:
// often enough that /api/state tracks a live tail, rare enough that
// the degraded per-record path stays allocation-light.
const statePublishInterval = 100 * time.Millisecond

// note tracks stream progress after a record or run of records.
func (p *pump) note(last time.Time, n int) {
	p.records += uint64(n)
	if last.After(p.lastSeen) {
		p.lastSeen = last
	}
	if now := time.Now(); now.Sub(p.lastPub) >= statePublishInterval {
		p.lastPub = now
		p.d.publishLight(p)
	}
}

// Consume implements pipeline.RecordSink.
func (p *pump) Consume(r firewall.Record) error {
	if dueAt(&p.lastAdvance, p.advanceEvery, r.Time) {
		if err := p.fire(r.Time); err != nil {
			return err
		}
	}
	p.eng.Process(r)
	p.note(r.Time, 1)
	return nil
}

// ConsumeBatch implements pipeline.BatchSink, splitting the batch at
// cadence fire points exactly as the per-record path would.
func (p *pump) ConsumeBatch(recs []firewall.Record) error {
	if len(recs) == 0 {
		return nil
	}
	start := 0
	if p.advanceEvery > 0 {
		for i := range recs {
			if dueAt(&p.lastAdvance, p.advanceEvery, recs[i].Time) {
				if start < i {
					p.eng.ProcessBatch(recs[start:i])
					start = i
				}
				if err := p.fire(recs[i].Time); err != nil {
					return err
				}
			}
		}
	}
	p.eng.ProcessBatch(recs[start:])
	p.note(recs[len(recs)-1].Time, len(recs))
	return nil
}

// Flush implements pipeline.RecordSink: the end of a generation
// (shutdown or reload). It cuts a final snapshot at lastSeen+1ns —
// a valid consistency cut (every consumed record is strictly before
// it) that is NOT a cadence fire point, so no tick is forced and the
// cadence phase travels in the sidecar instead — then stops the
// engine. The alerts ids' Flush sweeps out are deliberately
// DISCARDED, not published: they are the premature eviction of still-
// open candidates, which the snapshot preserves; a resumed daemon
// (or the same process after reload) re-grows them and alerts at the
// stream time an uninterrupted run would have.
func (p *pump) Flush() error {
	if p.flushed {
		return nil
	}
	p.flushed = true
	if !p.lastSeen.IsZero() {
		mark := p.lastSeen.Add(time.Nanosecond)
		var buf bytes.Buffer
		if err := p.eng.Snapshot(&buf, mark); err != nil {
			return err
		}
		p.out = handoff{
			snapshot: buf.Bytes(),
			marks:    marks{Advance: p.lastAdvance, Checkpoint: p.lastCkpt},
		}
		if p.ckptDir != "" {
			start := time.Now()
			err := pipeline.WriteCheckpoint(p.ckptDir, rawSnapshot(buf.Bytes()), mark)
			if err == nil {
				err = writeMarks(sidecarPath(p.ckptDir, mark), p.out.marks)
			}
			p.d.pm.ObserveCheckpoint(time.Since(start), err)
			if err != nil {
				return err
			}
			p.lastCkpt = mark
		}
	}
	p.eng.Flush() // discard: see above
	p.d.publishFinal(p)
	return nil
}

// Close implements pipeline.Sink.
func (p *pump) Close() error { return p.Flush() }

// rawSnapshot adapts already-serialized snapshot bytes to
// pipeline.Checkpointer, so the final cut serializes the engine once
// and still goes through WriteCheckpoint's temp-and-rename publish.
type rawSnapshot []byte

func (b rawSnapshot) Checkpoint(w io.Writer, _ time.Time) error {
	_, err := w.Write(b)
	return err
}

// sidecarPath names the marks sidecar of the checkpoint cut at mark.
func sidecarPath(dir string, mark time.Time) string {
	return pipeline.CheckpointPath(dir, mark) + ".marks"
}

// writeMarks persists the cadence phase next to its checkpoint. The
// sidecar's stem-plus-extra-suffix name is exactly what the hardened
// LatestCheckpoint ignores, so it can never be mistaken for a
// checkpoint.
func writeMarks(path string, m marks) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// readMarks loads a checkpoint's sidecar; ok=false when none exists
// (a periodic fire-point cut, where both marks equal the snapshot
// mark and need no sidecar).
func readMarks(path string) (marks, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return marks{}, false
	}
	var m marks
	if json.Unmarshal(b, &m) != nil {
		return marks{}, false
	}
	return m, true
}
