package serve

// Kill/resume serving parity (the ISSUE's acceptance bar): a daemon
// SIGTERMed mid-stream and restarted with Resume must publish, from
// the interruption point on, exactly the alerts an uninterrupted
// daemon publishes over the same log — and both runs' final shutdown
// checkpoints must be byte-identical. The cadence-phase sidecar is
// what makes this hold: the resumed run's tick schedule continues in
// phase, so every eviction (and therefore every alert and every
// periodic checkpoint) lands at the same stream positions.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/pipeline"
)

// parityTraffic builds a deterministic two-phase scan scenario: one
// scanner alerting in the first half, a second alerting in the
// second, benign fillers driving the tick clock throughout. Returns
// the full stream and the index splitting the halves.
func parityTraffic() (recs []firewall.Record, split int) {
	recs = append(recs, scanBurst("2001:db8:bad1::1", 0, 20)...)
	recs = append(recs, fillers(1, 20)...) // scanner1 alerts ≈ minute 11
	split = len(recs)
	recs = append(recs, scanBurst("2001:db8:bad2::1", 30*time.Minute, 20)...)
	recs = append(recs, fillers(31, 60)...) // scanner2 alerts ≈ minute 41
	return recs, split
}

func TestKillResumeParity(t *testing.T) {
	recs, split := parityTraffic()
	cfg := func(log, ckpt string) Config {
		return Config{
			LogPath:         log,
			Shards:          3,
			IDS:             testIDS(),
			AdvanceEvery:    time.Minute,
			CheckpointEvery: 5 * time.Minute,
			CheckpointDir:   ckpt,
		}
	}

	// Interrupted leg: daemon A consumes exactly the first half (the
	// log holds nothing more), is SIGTERMed, and cuts its final
	// checkpoint wherever it stopped.
	dir := t.TempDir()
	logAB := filepath.Join(dir, "ab.log")
	ckptAB := filepath.Join(dir, "ab-ckpt")
	appendLog(t, logAB, recs[:split])
	a := startDaemon(t, cfg(logAB, ckptAB))
	a.waitRecords(t, uint64(split))
	a.waitAlerts(t, 1) // scanner1 fired before the kill
	a.stop(t)
	alertsA := a.alerts()

	// Resumed leg: the log has grown while the daemon was down; B
	// restores the latest checkpoint, skips the replayed prefix, and
	// serves the rest.
	appendLog(t, logAB, recs[split:])
	bcfg := cfg(logAB, ckptAB)
	bcfg.Resume = true
	b := startDaemon(t, bcfg)
	b.waitRecords(t, uint64(len(recs)))
	b.waitAlerts(t, 1) // scanner2
	b.stop(t)
	alertsB := b.alerts()

	// Control leg: daemon C sees the whole stream uninterrupted.
	logC := filepath.Join(dir, "c.log")
	ckptC := filepath.Join(dir, "c-ckpt")
	appendLog(t, logC, recs)
	c := startDaemon(t, cfg(logC, ckptC))
	c.waitRecords(t, uint64(len(recs)))
	c.waitAlerts(t, 2)
	c.stop(t)
	alertsC := c.alerts()

	// The concatenated interrupted-run alert stream must equal the
	// uninterrupted one exactly.
	got := alertsJSON(t, append(append([]SeqAlert{}, alertsA...), alertsB...))
	want := alertsJSON(t, alertsC)
	if got != want {
		t.Fatalf("alert streams diverge:\ninterrupted+resumed:\n%s\nuninterrupted:\n%s", got, want)
	}
	if len(alertsA) == 0 || len(alertsB) == 0 {
		t.Fatalf("degenerate split: %d alerts before kill, %d after", len(alertsA), len(alertsB))
	}

	// Both final shutdown checkpoints cut at the same mark with the
	// same engine state: byte-identical files, byte-identical phase
	// sidecars.
	latestB, err := pipeline.LatestCheckpoint(ckptAB)
	if err != nil || latestB == "" {
		t.Fatalf("no resumed-run checkpoint (err %v)", err)
	}
	latestC, err := pipeline.LatestCheckpoint(ckptC)
	if err != nil || latestC == "" {
		t.Fatalf("no control-run checkpoint (err %v)", err)
	}
	if filepath.Base(latestB) != filepath.Base(latestC) {
		t.Fatalf("final marks differ: %s vs %s", filepath.Base(latestB), filepath.Base(latestC))
	}
	ckB, err := os.ReadFile(latestB)
	if err != nil {
		t.Fatal(err)
	}
	ckC, err := os.ReadFile(latestC)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckB, ckC) {
		t.Fatalf("final checkpoints differ (%d vs %d bytes)", len(ckB), len(ckC))
	}
	mB, okB := readMarks(latestB + ".marks")
	mC, okC := readMarks(latestC + ".marks")
	if !okB || !okC {
		t.Fatal("missing marks sidecar")
	}
	if !mB.Advance.Equal(mC.Advance) || !mB.Checkpoint.Equal(mC.Checkpoint) {
		t.Fatalf("cadence phase diverges: %+v vs %+v", mB, mC)
	}

	// Re-shard resilience: a resume at a different shard count serves
	// the same alerts (state re-partitions, output is deterministic).
	logD := filepath.Join(dir, "d.log")
	appendLog(t, logD, recs[:split])
	ckptD := filepath.Join(dir, "d-ckpt")
	dcfg := cfg(logD, ckptD)
	d1 := startDaemon(t, dcfg)
	d1.waitRecords(t, uint64(split))
	d1.waitAlerts(t, 1)
	d1.stop(t)
	appendLog(t, logD, recs[split:])
	dcfg.Resume = true
	dcfg.Shards = 1 // restore the 3-shard snapshot into a plain engine
	d2 := startDaemon(t, dcfg)
	d2.waitRecords(t, uint64(len(recs)))
	d2.waitAlerts(t, 1)
	d2.stop(t)
	got = alertsJSON(t, append(append([]SeqAlert{}, d1.alerts()...), d2.alerts()...))
	if got != want {
		t.Fatalf("re-sharded resume diverges:\n%s\nwant:\n%s", got, want)
	}
}
