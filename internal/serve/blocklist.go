package serve

// Blocklist export: every published alert's recommended prefix is
// folded into a deduplicated set and the whole rule file is rewritten
// atomically (temp file + rename) — a consumer (firewall reload hook,
// config-management agent) always reads either the previous complete
// list or the next one, never a partial write.

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"

	"v6scan/internal/ids"
)

// blocklist accumulates alert prefixes and mirrors them to a rule
// file. It is owned by the pump (the pipeline's dispatching
// goroutine); nothing else touches it.
type blocklist struct {
	path string
	set  map[netip.Prefix]struct{}
}

func newBlocklist(path string) *blocklist {
	return &blocklist{path: path, set: make(map[netip.Prefix]struct{})}
}

// add folds a batch of alerts in and reports whether the set grew.
func (b *blocklist) add(alerts []ids.Alert) bool {
	grew := false
	for _, a := range alerts {
		if _, ok := b.set[a.Prefix]; !ok {
			b.set[a.Prefix] = struct{}{}
			grew = true
		}
	}
	return grew
}

// write atomically rewrites the rule file: one CIDR per line, sorted
// (address, then prefix length) so consecutive exports diff cleanly.
func (b *blocklist) write() error {
	prefixes := make([]netip.Prefix, 0, len(b.set))
	for p := range b.set {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if c := prefixes[i].Addr().Compare(prefixes[j].Addr()); c != 0 {
			return c < 0
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	f, err := os.CreateTemp(filepath.Dir(b.path), ".blocklist-*")
	if err != nil {
		return fmt.Errorf("serve: blocklist export: %w", err)
	}
	tmp := f.Name()
	for _, p := range prefixes {
		if _, err := fmt.Fprintln(f, p); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("serve: blocklist export: %w", err)
		}
	}
	if err := f.Sync(); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: blocklist export: %w", err)
	}
	if err := os.Rename(tmp, b.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: blocklist export: %w", err)
	}
	return nil
}
